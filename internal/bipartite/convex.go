package bipartite

import (
	"container/heap"
	"fmt"
	"sort"
)

// Convex bipartite graphs and Glover's maximum matching algorithm
// (paper Table 1; references [2] F. Glover 1967 and [3] Lipski & Preparata).
//
// A bipartite graph is convex when there is an ordering of the right
// vertices under which every left vertex's neighborhood B(a) is a
// contiguous interval [BEGIN(a), END(a)]. Request graphs under non-circular
// symmetrical wavelength conversion are convex in the natural wavelength
// order (paper Section III).

// ConvexGraph is a bipartite graph in interval representation. Left vertex
// a is adjacent to right vertices Begin[a]..End[a] inclusive. A left vertex
// with Begin[a] > End[a] has no neighbors.
type ConvexGraph struct {
	NRight int
	Begin  []int
	End    []int
}

// NewConvexGraph builds an interval graph and validates the intervals.
func NewConvexGraph(nRight int, begin, end []int) (*ConvexGraph, error) {
	if len(begin) != len(end) {
		return nil, fmt.Errorf("bipartite: begin/end length mismatch %d vs %d", len(begin), len(end))
	}
	for a := range begin {
		if begin[a] > end[a] {
			continue // explicitly empty neighborhood
		}
		if begin[a] < 0 || end[a] >= nRight {
			return nil, fmt.Errorf("bipartite: interval [%d,%d] of left %d out of range [0,%d)", begin[a], end[a], a, nRight)
		}
	}
	return &ConvexGraph{NRight: nRight, Begin: append([]int(nil), begin...), End: append([]int(nil), end...)}, nil
}

// NLeft reports the number of left vertices.
func (c *ConvexGraph) NLeft() int { return len(c.Begin) }

// Graph expands the interval representation into an explicit Graph.
func (c *ConvexGraph) Graph() *Graph {
	g := NewGraph(c.NLeft(), c.NRight)
	for a := range c.Begin {
		for b := c.Begin[a]; b <= c.End[a]; b++ {
			g.AddEdge(a, b)
		}
	}
	return g
}

// Glover computes a maximum matching of the convex graph using Glover's
// algorithm exactly as the paper's Table 1 states it: for each right vertex
// i in order, among the still-unmatched left vertices adjacent to i, match
// the one with minimum END value. This literal form costs O(|E|); see
// GloverHeap for the O((n+k) log n) sweep used in benchmarks.
func (c *ConvexGraph) Glover() Matching {
	nL := c.NLeft()
	m := NewMatching(nL, c.NRight)
	taken := make([]bool, nL)
	for i := 0; i < c.NRight; i++ {
		best := Unmatched
		for a := 0; a < nL; a++ {
			if taken[a] || c.Begin[a] > i || c.End[a] < i {
				continue
			}
			if best == Unmatched || c.End[a] < c.End[best] {
				best = a
			}
		}
		if best != Unmatched {
			taken[best] = true
			m.Add(best, i)
		}
	}
	return m
}

// endHeap is a min-heap of left vertices keyed by END value, tie-broken by
// vertex index for determinism.
type endHeap struct {
	end []int
	xs  []int
}

func (h *endHeap) Len() int { return len(h.xs) }
func (h *endHeap) Less(i, j int) bool {
	a, b := h.xs[i], h.xs[j]
	if h.end[a] != h.end[b] {
		return h.end[a] < h.end[b]
	}
	return a < b
}
func (h *endHeap) Swap(i, j int)      { h.xs[i], h.xs[j] = h.xs[j], h.xs[i] }
func (h *endHeap) Push(x interface{}) { h.xs = append(h.xs, x.(int)) }
func (h *endHeap) Pop() interface{} {
	old := h.xs
	n := len(old)
	x := old[n-1]
	h.xs = old[:n-1]
	return x
}

// GloverHeap is the Lipski–Preparata realization of Glover's algorithm:
// sweep right vertices in order, keep the active left vertices (those whose
// interval has opened) in a min-heap on END, and match each right vertex to
// the heap minimum whose interval has not already closed.
func (c *ConvexGraph) GloverHeap() Matching {
	nL := c.NLeft()
	m := NewMatching(nL, c.NRight)
	order := make([]int, 0, nL)
	for a := 0; a < nL; a++ {
		if c.Begin[a] <= c.End[a] {
			order = append(order, a)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if c.Begin[a] != c.Begin[b] {
			return c.Begin[a] < c.Begin[b]
		}
		return a < b
	})
	h := &endHeap{end: c.End}
	next := 0
	for i := 0; i < c.NRight; i++ {
		for next < len(order) && c.Begin[order[next]] <= i {
			heap.Push(h, order[next])
			next++
		}
		for h.Len() > 0 && c.End[h.xs[0]] < i {
			heap.Pop(h) // interval closed before being matched
		}
		if h.Len() > 0 {
			a := heap.Pop(h).(int)
			m.Add(a, i)
		}
	}
	return m
}
