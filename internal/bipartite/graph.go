// Package bipartite provides bipartite graphs and maximum matching
// algorithms: Hopcroft–Karp (the paper's general-case baseline, [1] in the
// paper's references), a simple augmenting-path matcher (test oracle),
// Glover's algorithm for convex bipartite graphs ([2], paper Table 1), and
// verification utilities (matching validity, König-style optimality
// certificates).
//
// Left vertices are 0..NLeft−1 and right vertices are 0..NRight−1. The
// request graphs of the paper map connection requests to left vertices and
// output wavelength channels to right vertices.
package bipartite

import (
	"fmt"
	"sort"
)

// Unmatched marks a vertex with no partner in a Matching. It corresponds to
// the paper's MATCH[i] = ∅.
const Unmatched = -1

// Graph is a bipartite graph stored as left-side adjacency lists.
// The zero value is an empty graph.
type Graph struct {
	nLeft, nRight int
	adj           [][]int // adj[a] lists right vertices adjacent to left vertex a
	edges         int
}

// NewGraph returns an empty bipartite graph with the given part sizes.
func NewGraph(nLeft, nRight int) *Graph {
	if nLeft < 0 || nRight < 0 {
		panic(fmt.Sprintf("bipartite: negative part size (%d, %d)", nLeft, nRight))
	}
	return &Graph{nLeft: nLeft, nRight: nRight, adj: make([][]int, nLeft)}
}

// NLeft reports the number of left vertices.
func (g *Graph) NLeft() int { return g.nLeft }

// NRight reports the number of right vertices.
func (g *Graph) NRight() int { return g.nRight }

// NumEdges reports the number of edges.
func (g *Graph) NumEdges() int { return g.edges }

// AddEdge inserts edge (a, b). Duplicate edges are ignored. Panics on
// out-of-range endpoints, which indicates a construction bug in the caller.
func (g *Graph) AddEdge(a, b int) {
	if a < 0 || a >= g.nLeft || b < 0 || b >= g.nRight {
		panic(fmt.Sprintf("bipartite: edge (%d,%d) out of range %dx%d", a, b, g.nLeft, g.nRight))
	}
	for _, x := range g.adj[a] {
		if x == b {
			return
		}
	}
	g.adj[a] = append(g.adj[a], b)
	g.edges++
}

// HasEdge reports whether edge (a, b) exists.
func (g *Graph) HasEdge(a, b int) bool {
	if a < 0 || a >= g.nLeft {
		return false
	}
	for _, x := range g.adj[a] {
		if x == b {
			return true
		}
	}
	return false
}

// Adj returns the right vertices adjacent to left vertex a. The returned
// slice is owned by the graph and must not be modified.
func (g *Graph) Adj(a int) []int { return g.adj[a] }

// SortAdj sorts every adjacency list ascending. Deterministic iteration
// order simplifies golden tests.
func (g *Graph) SortAdj() {
	for _, l := range g.adj {
		sort.Ints(l)
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.nLeft, g.nRight)
	for a, l := range g.adj {
		c.adj[a] = append([]int(nil), l...)
	}
	c.edges = g.edges
	return c
}

// Matching is a set of vertex-disjoint edges, stored from both sides:
// LeftOf[b] is the left partner of right vertex b (or Unmatched) and
// RightOf[a] is the right partner of left vertex a (or Unmatched).
// LeftOf follows the paper's MATCH[] array convention.
type Matching struct {
	LeftOf  []int
	RightOf []int
}

// NewMatching returns an empty matching for a graph with the given part
// sizes.
func NewMatching(nLeft, nRight int) Matching {
	m := Matching{
		LeftOf:  make([]int, nRight),
		RightOf: make([]int, nLeft),
	}
	for i := range m.LeftOf {
		m.LeftOf[i] = Unmatched
	}
	for i := range m.RightOf {
		m.RightOf[i] = Unmatched
	}
	return m
}

// Size returns the number of matched edges.
func (m Matching) Size() int {
	n := 0
	for _, a := range m.LeftOf {
		if a != Unmatched {
			n++
		}
	}
	return n
}

// Add records matched edge (a, b), overwriting nothing: it panics if either
// endpoint is already matched, which indicates an algorithm bug.
func (m Matching) Add(a, b int) {
	if m.RightOf[a] != Unmatched || m.LeftOf[b] != Unmatched {
		panic(fmt.Sprintf("bipartite: Add(%d,%d) collides with existing matching", a, b))
	}
	m.RightOf[a] = b
	m.LeftOf[b] = a
}

// Edges returns the matched edges as (left, right) pairs sorted by left
// vertex.
func (m Matching) Edges() [][2]int {
	var out [][2]int
	for a, b := range m.RightOf {
		if b != Unmatched {
			out = append(out, [2]int{a, b})
		}
	}
	return out
}

// Validate checks that m is a well-formed matching of g: consistent mirror
// arrays, every matched pair an edge of g, and vertex-disjointness.
func (m Matching) Validate(g *Graph) error {
	if len(m.RightOf) != g.NLeft() || len(m.LeftOf) != g.NRight() {
		return fmt.Errorf("bipartite: matching shape %dx%d does not fit graph %dx%d",
			len(m.RightOf), len(m.LeftOf), g.NLeft(), g.NRight())
	}
	for a, b := range m.RightOf {
		if b == Unmatched {
			continue
		}
		if b < 0 || b >= g.NRight() {
			return fmt.Errorf("bipartite: left %d matched to out-of-range right %d", a, b)
		}
		if m.LeftOf[b] != a {
			return fmt.Errorf("bipartite: mirror mismatch at (%d,%d): LeftOf[%d]=%d", a, b, b, m.LeftOf[b])
		}
		if !g.HasEdge(a, b) {
			return fmt.Errorf("bipartite: matched pair (%d,%d) is not an edge", a, b)
		}
	}
	for b, a := range m.LeftOf {
		if a == Unmatched {
			continue
		}
		if a < 0 || a >= g.NLeft() {
			return fmt.Errorf("bipartite: right %d matched to out-of-range left %d", b, a)
		}
		if m.RightOf[a] != b {
			return fmt.Errorf("bipartite: mirror mismatch at right %d", b)
		}
	}
	return nil
}
