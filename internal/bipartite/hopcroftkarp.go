package bipartite

// Hopcroft–Karp maximum bipartite matching, the paper's general-case
// baseline: reference [1], J. Hopcroft and R. Karp, "An n^(5/2) algorithm
// for maximum matchings in bipartite graphs", SIAM J. Comput. 1973. Running
// time O(√V · E). Applied naively to a request graph the paper bounds this
// as O(N^(3/2) k^(3/2) d), the figure its own O(k) / O(dk) algorithms are
// measured against.

const infDist = int(^uint(0) >> 1)

// HopcroftKarp computes a maximum matching of g.
func HopcroftKarp(g *Graph) Matching {
	hk := newHKState(g)
	return hk.run()
}

// hkState carries the BFS/DFS scratch of one Hopcroft–Karp execution.
type hkState struct {
	g       *Graph
	matchL  []int // matchL[a] = right partner of left a, or Unmatched
	matchR  []int // matchR[b] = left partner of right b, or Unmatched
	dist    []int
	queue   []int
	distNil int
}

func newHKState(g *Graph) *hkState {
	hk := &hkState{
		g:      g,
		matchL: make([]int, g.NLeft()),
		matchR: make([]int, g.NRight()),
		dist:   make([]int, g.NLeft()),
		queue:  make([]int, 0, g.NLeft()),
	}
	for i := range hk.matchL {
		hk.matchL[i] = Unmatched
	}
	for i := range hk.matchR {
		hk.matchR[i] = Unmatched
	}
	return hk
}

func (hk *hkState) run() Matching {
	for hk.bfs() {
		for a := 0; a < hk.g.NLeft(); a++ {
			if hk.matchL[a] == Unmatched {
				hk.dfs(a)
			}
		}
	}
	m := NewMatching(hk.g.NLeft(), hk.g.NRight())
	for a, b := range hk.matchL {
		if b != Unmatched {
			m.Add(a, b)
		}
	}
	return m
}

// bfs layers the alternating-path forest from all free left vertices and
// reports whether at least one augmenting path exists.
func (hk *hkState) bfs() bool {
	hk.queue = hk.queue[:0]
	for a := 0; a < hk.g.NLeft(); a++ {
		if hk.matchL[a] == Unmatched {
			hk.dist[a] = 0
			hk.queue = append(hk.queue, a)
		} else {
			hk.dist[a] = infDist
		}
	}
	hk.distNil = infDist
	for head := 0; head < len(hk.queue); head++ {
		a := hk.queue[head]
		if hk.dist[a] >= hk.distNil {
			continue
		}
		for _, b := range hk.g.Adj(a) {
			next := hk.matchR[b]
			if next == Unmatched {
				if hk.distNil == infDist {
					hk.distNil = hk.dist[a] + 1
				}
			} else if hk.dist[next] == infDist {
				hk.dist[next] = hk.dist[a] + 1
				hk.queue = append(hk.queue, next)
			}
		}
	}
	return hk.distNil != infDist
}

// dfs searches for a vertex-disjoint augmenting path from free left vertex
// a along the BFS layering, flipping matched edges along the way.
func (hk *hkState) dfs(a int) bool {
	for _, b := range hk.g.Adj(a) {
		next := hk.matchR[b]
		if next == Unmatched {
			if hk.distNil == hk.dist[a]+1 {
				hk.matchR[b] = a
				hk.matchL[a] = b
				return true
			}
			continue
		}
		if hk.dist[next] == hk.dist[a]+1 && hk.dfs(next) {
			hk.matchR[b] = a
			hk.matchL[a] = b
			return true
		}
	}
	hk.dist[a] = infDist
	return false
}

// AugmentingPath computes a maximum matching by repeated single augmenting
// path search (Hungarian-style), O(V·E). It exists as an independent oracle
// to cross-check Hopcroft–Karp in tests: two implementations sharing no
// code must agree on cardinality.
func AugmentingPath(g *Graph) Matching {
	matchL := make([]int, g.NLeft())
	matchR := make([]int, g.NRight())
	for i := range matchL {
		matchL[i] = Unmatched
	}
	for i := range matchR {
		matchR[i] = Unmatched
	}
	visited := make([]bool, g.NRight())
	var try func(a int) bool
	try = func(a int) bool {
		for _, b := range g.Adj(a) {
			if visited[b] {
				continue
			}
			visited[b] = true
			if matchR[b] == Unmatched || try(matchR[b]) {
				matchR[b] = a
				matchL[a] = b
				return true
			}
		}
		return false
	}
	for a := 0; a < g.NLeft(); a++ {
		for i := range visited {
			visited[i] = false
		}
		try(a)
	}
	m := NewMatching(g.NLeft(), g.NRight())
	for a, b := range matchL {
		if b != Unmatched {
			m.Add(a, b)
		}
	}
	return m
}

// IsMaximum verifies that m is a maximum matching of g by checking that no
// augmenting path exists relative to m (Berge's theorem). It assumes m is a
// valid matching of g (call Validate first when in doubt).
func IsMaximum(g *Graph, m Matching) bool {
	visited := make([]bool, g.NRight())
	var try func(a int) bool
	matchR := append([]int(nil), m.LeftOf...)
	matchL := append([]int(nil), m.RightOf...)
	try = func(a int) bool {
		for _, b := range g.Adj(a) {
			if visited[b] {
				continue
			}
			visited[b] = true
			if matchR[b] == Unmatched || try(matchR[b]) {
				matchR[b] = a
				matchL[a] = b
				return true
			}
		}
		return false
	}
	for a := 0; a < g.NLeft(); a++ {
		if matchL[a] != Unmatched {
			continue
		}
		for i := range visited {
			visited[i] = false
		}
		if try(a) {
			return false // found an augmenting path: m was not maximum
		}
	}
	return true
}

// MinVertexCover returns a minimum vertex cover (König's theorem) built
// from maximum matching m: left vertices NOT reachable from free left
// vertices by alternating paths, plus right vertices that ARE reachable.
// Its size equals m.Size() and certifies optimality: every edge is covered
// and no matching can exceed any vertex cover.
func MinVertexCover(g *Graph, m Matching) (left, right []bool) {
	nL, nR := g.NLeft(), g.NRight()
	visL := make([]bool, nL)
	visR := make([]bool, nR)
	queue := make([]int, 0, nL)
	for a := 0; a < nL; a++ {
		if m.RightOf[a] == Unmatched {
			visL[a] = true
			queue = append(queue, a)
		}
	}
	for head := 0; head < len(queue); head++ {
		a := queue[head]
		for _, b := range g.Adj(a) {
			if visR[b] {
				continue
			}
			visR[b] = true
			next := m.LeftOf[b]
			if next != Unmatched && !visL[next] {
				visL[next] = true
				queue = append(queue, next)
			}
		}
	}
	left = make([]bool, nL)
	right = make([]bool, nR)
	for a := 0; a < nL; a++ {
		left[a] = !visL[a]
	}
	for b := 0; b < nR; b++ {
		right[b] = visR[b]
	}
	return left, right
}
