package bipartite

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewConvexGraphValidation(t *testing.T) {
	if _, err := NewConvexGraph(4, []int{0, 1}, []int{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewConvexGraph(4, []int{-1}, []int{2}); err == nil {
		t.Fatal("negative begin accepted")
	}
	if _, err := NewConvexGraph(4, []int{0}, []int{4}); err == nil {
		t.Fatal("end ≥ nRight accepted")
	}
	// Empty neighborhood (begin > end) is explicitly legal.
	c, err := NewConvexGraph(4, []int{3}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Graph().NumEdges() != 0 {
		t.Fatal("empty interval produced edges")
	}
}

func TestConvexGraphExpansion(t *testing.T) {
	c, err := NewConvexGraph(4, []int{0, 1}, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	g := c.Graph()
	if g.NumEdges() != 6 {
		t.Fatalf("NumEdges = %d, want 6", g.NumEdges())
	}
	for b := 0; b <= 2; b++ {
		if !g.HasEdge(0, b) {
			t.Fatalf("missing edge (0,%d)", b)
		}
	}
}

// TestGloverPaperTable1 checks Glover on the paper's non-circular request
// graph of Fig. 3(b): request vector [2,1,0,1,1,2], k = 6, e = f = 1.
// Requests (in order) arrive on wavelengths 0,0,1,3,4,5,5 so the intervals
// are clamped [w−1, w+1]. The maximum matching has 6 edges (Fig. 4(b)).
func TestGloverPaperTable1(t *testing.T) {
	begin := []int{0, 0, 0, 2, 3, 4, 4}
	end := []int{1, 1, 2, 4, 5, 5, 5}
	c, err := NewConvexGraph(6, begin, end)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range map[string]Matching{
		"Glover":     c.Glover(),
		"GloverHeap": c.GloverHeap(),
	} {
		if err := m.Validate(c.Graph()); err != nil {
			t.Fatalf("%s: invalid: %v", name, err)
		}
		if m.Size() != 6 {
			t.Fatalf("%s: size = %d, want 6", name, m.Size())
		}
	}
}

func TestGloverSmallCases(t *testing.T) {
	cases := []struct {
		name   string
		nRight int
		begin  []int
		end    []int
		want   int
	}{
		{"empty", 3, nil, nil, 0},
		{"single", 3, []int{1}, []int{1}, 1},
		{"all same column", 3, []int{1, 1, 1}, []int{1, 1, 1}, 1},
		{"nested intervals", 4, []int{0, 1}, []int{3, 2}, 2},
		{"disjoint", 4, []int{0, 2}, []int{1, 3}, 2},
		{"greedy trap", 2, []int{0, 0}, []int{1, 0}, 2},
		{"more lefts than rights", 2, []int{0, 0, 0}, []int{1, 1, 1}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := NewConvexGraph(tc.nRight, tc.begin, tc.end)
			if err != nil {
				t.Fatal(err)
			}
			if got := c.Glover().Size(); got != tc.want {
				t.Fatalf("Glover size = %d, want %d", got, tc.want)
			}
			if got := c.GloverHeap().Size(); got != tc.want {
				t.Fatalf("GloverHeap size = %d, want %d", got, tc.want)
			}
		})
	}
}

// randomConvex builds a random interval bipartite graph.
func randomConvex(rng *rand.Rand, nL, nR int) *ConvexGraph {
	begin := make([]int, nL)
	end := make([]int, nL)
	for a := 0; a < nL; a++ {
		if nR == 0 || rng.Intn(8) == 0 {
			begin[a], end[a] = 1, 0 // empty neighborhood
			continue
		}
		begin[a] = rng.Intn(nR)
		end[a] = begin[a] + rng.Intn(nR-begin[a])
	}
	c, err := NewConvexGraph(nR, begin, end)
	if err != nil {
		panic(err)
	}
	return c
}

// Property P5 support: Glover (both forms) is optimal on convex graphs —
// cardinality equals Hopcroft–Karp on the expanded graph.
func TestGloverOptimalRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 400; trial++ {
		c := randomConvex(rng, rng.Intn(14), rng.Intn(10))
		g := c.Graph()
		want := HopcroftKarp(g).Size()
		gl := c.Glover()
		gh := c.GloverHeap()
		if err := gl.Validate(g); err != nil {
			t.Fatalf("trial %d: Glover invalid: %v", trial, err)
		}
		if err := gh.Validate(g); err != nil {
			t.Fatalf("trial %d: GloverHeap invalid: %v", trial, err)
		}
		if gl.Size() != want || gh.Size() != want {
			t.Fatalf("trial %d: Glover %d / Heap %d, want %d (begin=%v end=%v)",
				trial, gl.Size(), gh.Size(), want, c.Begin, c.End)
		}
	}
}

// Property: GloverHeap produces exactly the same matching (not just the same
// cardinality) as the literal Table 1 algorithm, because both use the same
// min-END tie-break by vertex index.
func TestGloverHeapIdenticalToLiteral(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomConvex(rng, rng.Intn(10), rng.Intn(8))
		a := c.Glover()
		b := c.GloverHeap()
		for i := range a.LeftOf {
			if a.LeftOf[i] != b.LeftOf[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
