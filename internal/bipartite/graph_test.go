package bipartite

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestNewGraphPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewGraph(-1, 2)
}

func TestAddEdgeDedup(t *testing.T) {
	g := NewGraph(2, 2)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	g.AddEdge(0, 0)
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 0) || g.HasEdge(1, 0) {
		t.Fatal("HasEdge mismatch")
	}
	if g.HasEdge(-1, 0) || g.HasEdge(5, 0) {
		t.Fatal("out-of-range HasEdge must be false")
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	g := NewGraph(2, 2)
	for _, e := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("AddEdge(%v) should panic", e)
				}
			}()
			g.AddEdge(e[0], e[1])
		}()
	}
}

func TestSortAdjAndClone(t *testing.T) {
	g := NewGraph(1, 4)
	g.AddEdge(0, 3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	c := g.Clone()
	g.SortAdj()
	if !reflect.DeepEqual(g.Adj(0), []int{1, 2, 3}) {
		t.Fatalf("sorted adj = %v", g.Adj(0))
	}
	if !reflect.DeepEqual(c.Adj(0), []int{3, 1, 2}) {
		t.Fatalf("clone should be unaffected, got %v", c.Adj(0))
	}
	c.AddEdge(0, 0)
	if g.HasEdge(0, 0) {
		t.Fatal("clone edge leaked into original")
	}
}

func TestMatchingBasics(t *testing.T) {
	m := NewMatching(3, 4)
	if m.Size() != 0 {
		t.Fatal("fresh matching not empty")
	}
	m.Add(1, 2)
	m.Add(0, 3)
	if m.Size() != 2 {
		t.Fatalf("Size = %d", m.Size())
	}
	want := [][2]int{{0, 3}, {1, 2}}
	if got := m.Edges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Edges = %v, want %v", got, want)
	}
}

func TestMatchingAddCollisionPanics(t *testing.T) {
	m := NewMatching(2, 2)
	m.Add(0, 0)
	for _, e := range [][2]int{{0, 1}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Add(%v) should panic", e)
				}
			}()
			m.Add(e[0], e[1])
		}()
	}
}

func TestMatchingValidate(t *testing.T) {
	g := NewGraph(2, 2)
	g.AddEdge(0, 0)
	g.AddEdge(1, 1)

	good := NewMatching(2, 2)
	good.Add(0, 0)
	if err := good.Validate(g); err != nil {
		t.Fatalf("valid matching rejected: %v", err)
	}

	shape := NewMatching(3, 2)
	if err := shape.Validate(g); err == nil {
		t.Fatal("shape mismatch accepted")
	}

	nonEdge := NewMatching(2, 2)
	nonEdge.Add(0, 1) // (0,1) is not an edge
	if err := nonEdge.Validate(g); err == nil {
		t.Fatal("non-edge matching accepted")
	}

	broken := NewMatching(2, 2)
	broken.RightOf[0] = 0 // mirror not set
	if err := broken.Validate(g); err == nil {
		t.Fatal("mirror mismatch accepted")
	}

	brokenR := NewMatching(2, 2)
	brokenR.LeftOf[0] = 1 // mirror not set on the left
	if err := brokenR.Validate(g); err == nil {
		t.Fatal("right-side mirror mismatch accepted")
	}

	oob := NewMatching(2, 2)
	oob.RightOf[0] = 7
	if err := oob.Validate(g); err == nil {
		t.Fatal("out-of-range partner accepted")
	}
}

// randomGraph builds a random bipartite graph with edge probability p.
func randomGraph(rng *rand.Rand, nL, nR int, p float64) *Graph {
	g := NewGraph(nL, nR)
	for a := 0; a < nL; a++ {
		for b := 0; b < nR; b++ {
			if rng.Float64() < p {
				g.AddEdge(a, b)
			}
		}
	}
	return g
}

func TestHopcroftKarpKnownCases(t *testing.T) {
	cases := []struct {
		name  string
		nL    int
		nR    int
		edges [][2]int
		want  int
	}{
		{"empty", 0, 0, nil, 0},
		{"no edges", 3, 3, nil, 0},
		{"perfect diag", 3, 3, [][2]int{{0, 0}, {1, 1}, {2, 2}}, 3},
		{"star", 3, 1, [][2]int{{0, 0}, {1, 0}, {2, 0}}, 1},
		{"augment needed", 2, 2, [][2]int{{0, 0}, {0, 1}, {1, 0}}, 2},
		{"complete 3x2", 3, 2, [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}, {2, 1}}, 2},
		{
			// The paper's running example: 7 requests on 6 wavelengths.
			// Requests on λ0,λ0,λ1,λ3,λ4,λ5,λ5 with circular d=3
			// conversion; maximum matching is 6 (Fig. 4).
			"paper fig4", 7, 6,
			[][2]int{
				{0, 5}, {0, 0}, {0, 1},
				{1, 5}, {1, 0}, {1, 1},
				{2, 0}, {2, 1}, {2, 2},
				{3, 2}, {3, 3}, {3, 4},
				{4, 3}, {4, 4}, {4, 5},
				{5, 4}, {5, 5}, {5, 0},
				{6, 4}, {6, 5}, {6, 0},
			},
			6,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := NewGraph(tc.nL, tc.nR)
			for _, e := range tc.edges {
				g.AddEdge(e[0], e[1])
			}
			m := HopcroftKarp(g)
			if err := m.Validate(g); err != nil {
				t.Fatalf("invalid matching: %v", err)
			}
			if m.Size() != tc.want {
				t.Fatalf("size = %d, want %d", m.Size(), tc.want)
			}
			if !IsMaximum(g, m) {
				t.Fatal("IsMaximum rejected the HK matching")
			}
		})
	}
}

func TestHopcroftKarpAgainstAugmentingPath(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		nL := rng.Intn(12)
		nR := rng.Intn(12)
		g := randomGraph(rng, nL, nR, rng.Float64())
		hk := HopcroftKarp(g)
		ap := AugmentingPath(g)
		if err := hk.Validate(g); err != nil {
			t.Fatalf("trial %d: HK invalid: %v", trial, err)
		}
		if err := ap.Validate(g); err != nil {
			t.Fatalf("trial %d: AP invalid: %v", trial, err)
		}
		if hk.Size() != ap.Size() {
			t.Fatalf("trial %d: HK %d vs AP %d", trial, hk.Size(), ap.Size())
		}
		if !IsMaximum(g, hk) || !IsMaximum(g, ap) {
			t.Fatalf("trial %d: IsMaximum disagrees", trial)
		}
	}
}

func TestIsMaximumDetectsNonMaximum(t *testing.T) {
	// Graph where greedy-by-first-edge is suboptimal: 0–{0,1}, 1–{0}.
	g := NewGraph(2, 2)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	sub := NewMatching(2, 2)
	sub.Add(0, 0) // blocks left 1; size 1 < max 2
	if IsMaximum(g, sub) {
		t.Fatal("IsMaximum accepted a non-maximum matching")
	}
}

// TestHallDeficiencyFormula cross-checks Hopcroft–Karp against a third,
// structurally different oracle: the König–Egerváry / defect Hall theorem,
// max matching = |A| − max over S ⊆ A of (|S| − |N(S)|), evaluated by
// exhaustive subset enumeration on small graphs.
func TestHallDeficiencyFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 150; trial++ {
		nL := rng.Intn(11) // ≤ 10 left vertices → ≤ 1024 subsets
		nR := rng.Intn(8)
		g := randomGraph(rng, nL, nR, rng.Float64())
		maxDef := 0
		for mask := 0; mask < 1<<nL; mask++ {
			size := 0
			var nbr uint64
			for a := 0; a < nL; a++ {
				if mask&(1<<a) == 0 {
					continue
				}
				size++
				for _, b := range g.Adj(a) {
					nbr |= 1 << uint(b)
				}
			}
			nbrCount := 0
			for x := nbr; x != 0; x &= x - 1 {
				nbrCount++
			}
			if d := size - nbrCount; d > maxDef {
				maxDef = d
			}
		}
		want := nL - maxDef
		if got := HopcroftKarp(g).Size(); got != want {
			t.Fatalf("trial %d: HK %d, Hall formula %d", trial, got, want)
		}
	}
}

func TestMinVertexCoverCertifiesOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nL := rng.Intn(10) + 1
		nR := rng.Intn(10) + 1
		g := randomGraph(rng, nL, nR, rng.Float64())
		m := HopcroftKarp(g)
		left, right := MinVertexCover(g, m)
		// 1. Cover size equals matching size (König's theorem).
		size := 0
		for _, v := range left {
			if v {
				size++
			}
		}
		for _, v := range right {
			if v {
				size++
			}
		}
		if size != m.Size() {
			t.Fatalf("trial %d: |cover| = %d, |matching| = %d", trial, size, m.Size())
		}
		// 2. Every edge covered.
		for a := 0; a < nL; a++ {
			for _, b := range g.Adj(a) {
				if !left[a] && !right[b] {
					t.Fatalf("trial %d: edge (%d,%d) uncovered", trial, a, b)
				}
			}
		}
	}
}
