// Package async simulates the paper's other operating mode: asynchronous
// wavelength routing (Section I — "similar to electrical circuit switching
// networks"). Connections arrive at arbitrary times, are assigned a free
// output channel within their conversion window immediately ("first come
// first served", as in the analyses the paper cites: Tripathi & Sivarajan
// [11], Ramaswami & Sasaki [13]) and hold it for an exponential duration.
// There is no slotted scheduling — the request order resolves contention —
// which is exactly why the paper's synchronous setting needs the matching
// algorithms this repository is about; the asynchronous simulator exists
// to reproduce the motivating claim that small conversion degrees already
// capture most of full range conversion's benefit, and to cross-check
// against the Erlang-B formulas in package analysis.
//
// Because output fibers are statistically independent under unicast
// traffic (the paper's Section I partition argument applies here too), the
// simulator models a single output fiber: Poisson connection arrivals of
// total rate λ, each on a uniform input wavelength, exponential holding
// times of mean 1/µ, k output channels, limited range conversion.
package async

import (
	"container/heap"
	"fmt"

	"wdmsched/internal/traffic"
	"wdmsched/internal/wavelength"
)

// Policy selects the channel for an admitted connection among the free
// channels of its conversion window.
type Policy int

const (
	// FirstFit takes the first free channel in window order (minus end
	// first) — the natural hardware policy.
	FirstFit Policy = iota
	// RandomFit takes a uniformly random free window channel.
	RandomFit
)

// String names the policy for tables.
func (p Policy) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case RandomFit:
		return "random-fit"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config parameterizes one single-output-fiber run.
type Config struct {
	// Conv is the conversion model (k channels).
	Conv wavelength.Conversion
	// ArrivalRate λ is the total connection arrival rate at this output
	// fiber (connections per unit time).
	ArrivalRate float64
	// MeanHold is the mean holding time 1/µ.
	MeanHold float64
	// Policy is the channel assignment rule.
	Policy Policy
	// Seed drives the run.
	Seed uint64
}

// Stats reports an asynchronous run.
type Stats struct {
	Offered int64
	Blocked int64
	// CarriedErlangs is the time-average number of busy channels.
	CarriedErlangs float64
	// Duration is the simulated time span.
	Duration float64
}

// BlockingProbability is Blocked/Offered.
func (s Stats) BlockingProbability() float64 {
	if s.Offered == 0 {
		return 0
	}
	return float64(s.Blocked) / float64(s.Offered)
}

// departure is a scheduled channel release.
type departure struct {
	at      float64
	channel int
}

type departureHeap []departure

func (h departureHeap) Len() int            { return len(h) }
func (h departureHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h departureHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *departureHeap) Push(x interface{}) { *h = append(*h, x.(departure)) }
func (h *departureHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run simulates arrivals connections and returns the run statistics.
func Run(cfg Config, arrivals int) (Stats, error) {
	if cfg.ArrivalRate <= 0 || cfg.MeanHold <= 0 {
		return Stats{}, fmt.Errorf("async: rates must be positive, got λ=%v hold=%v", cfg.ArrivalRate, cfg.MeanHold)
	}
	if arrivals < 0 {
		return Stats{}, fmt.Errorf("async: negative arrival count %d", arrivals)
	}
	if cfg.Policy != FirstFit && cfg.Policy != RandomFit {
		return Stats{}, fmt.Errorf("async: unknown policy %v", cfg.Policy)
	}
	k := cfg.Conv.K()
	rng := traffic.NewRNG(cfg.Seed)
	busy := make([]bool, k)
	nBusy := 0
	var dep departureHeap
	var st Stats
	var now, lastEvent, busyIntegral float64
	free := make([]int, 0, k) // scratch for RandomFit

	advance := func(to float64) {
		busyIntegral += float64(nBusy) * (to - lastEvent)
		lastEvent = to
	}

	for i := 0; i < arrivals; i++ {
		now += rng.Exp(cfg.ArrivalRate)
		// Release every channel whose connection ended before now.
		for len(dep) > 0 && dep[0].at <= now {
			d := heap.Pop(&dep).(departure)
			advance(d.at)
			busy[d.channel] = false
			nBusy--
		}
		advance(now)
		st.Offered++
		w := wavelength.Wavelength(rng.Intn(k))
		ch := -1
		switch cfg.Policy {
		case FirstFit:
			cfg.Conv.Adjacency(w).Each(func(b int) {
				if ch < 0 && !busy[b] {
					ch = b
				}
			})
		case RandomFit:
			free = free[:0]
			cfg.Conv.Adjacency(w).Each(func(b int) {
				if !busy[b] {
					free = append(free, b)
				}
			})
			if len(free) > 0 {
				ch = free[rng.Intn(len(free))]
			}
		}
		if ch < 0 {
			st.Blocked++
			continue
		}
		busy[ch] = true
		nBusy++
		heap.Push(&dep, departure{at: now + rng.Exp(1/cfg.MeanHold), channel: ch})
	}
	// Drain remaining departures to close the busy-time integral.
	for len(dep) > 0 {
		d := heap.Pop(&dep).(departure)
		advance(d.at)
		busy[d.channel] = false
		nBusy--
	}
	st.Duration = lastEvent
	if st.Duration > 0 {
		st.CarriedErlangs = busyIntegral / st.Duration
	}
	return st, nil
}

// Sweep runs Run for each conversion degree in degrees (odd values,
// symmetric reach; d = k is full range) and returns the blocking
// probabilities in order. Shared seed: every degree sees an identical
// arrival process, so differences are due to conversion reach alone.
func Sweep(kind wavelength.Kind, k int, degrees []int, cfg Config, arrivals int) ([]float64, error) {
	out := make([]float64, 0, len(degrees))
	for _, d := range degrees {
		var conv wavelength.Conversion
		var err error
		if d >= k {
			conv, err = wavelength.New(wavelength.Full, k, 0, 0)
		} else {
			conv, err = wavelength.NewSymmetric(kind, k, d)
		}
		if err != nil {
			return nil, err
		}
		c := cfg
		c.Conv = conv
		st, err := Run(c, arrivals)
		if err != nil {
			return nil, err
		}
		out = append(out, st.BlockingProbability())
	}
	return out, nil
}
