package async

import (
	"math"
	"testing"

	"wdmsched/internal/analysis"
	"wdmsched/internal/wavelength"
)

func full(k int) wavelength.Conversion {
	return wavelength.MustNew(wavelength.Full, k, 0, 0)
}

func TestRunValidation(t *testing.T) {
	conv := full(4)
	if _, err := Run(Config{Conv: conv, ArrivalRate: 0, MeanHold: 1}, 10); err == nil {
		t.Fatal("zero arrival rate accepted")
	}
	if _, err := Run(Config{Conv: conv, ArrivalRate: 1, MeanHold: 0}, 10); err == nil {
		t.Fatal("zero hold accepted")
	}
	if _, err := Run(Config{Conv: conv, ArrivalRate: 1, MeanHold: 1}, -1); err == nil {
		t.Fatal("negative arrivals accepted")
	}
	if _, err := Run(Config{Conv: conv, ArrivalRate: 1, MeanHold: 1, Policy: Policy(9)}, 10); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestZeroArrivals(t *testing.T) {
	st, err := Run(Config{Conv: full(4), ArrivalRate: 1, MeanHold: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Offered != 0 || st.Blocked != 0 || st.BlockingProbability() != 0 {
		t.Fatalf("empty run not empty: %+v", st)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Conv: full(8), ArrivalRate: 10, MeanHold: 1, Seed: 7}
	a, err := Run(cfg, 5000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

// TestFullRangeMatchesErlangB: full range conversion at one output fiber
// is an M/M/k/k loss system, so the simulated blocking probability must
// match Erlang-B.
func TestFullRangeMatchesErlangB(t *testing.T) {
	const k = 8
	for _, a := range []float64{4, 8, 12} { // offered Erlangs
		cfg := Config{Conv: full(k), ArrivalRate: a, MeanHold: 1, Seed: 11}
		st, err := Run(cfg, 400000)
		if err != nil {
			t.Fatal(err)
		}
		want, err := analysis.ErlangB(k, a)
		if err != nil {
			t.Fatal(err)
		}
		got := st.BlockingProbability()
		if math.Abs(got-want) > 0.01+0.05*want {
			t.Fatalf("A=%v: blocking %v, Erlang-B %v", a, got, want)
		}
		// Carried load = A(1−B) by Little's law.
		carried := a * (1 - want)
		if math.Abs(st.CarriedErlangs-carried) > 0.05*carried+0.1 {
			t.Fatalf("A=%v: carried %v, want ≈%v", a, st.CarriedErlangs, carried)
		}
	}
}

// TestNoConversionMatchesPerChannelErlangB: with d = 1 each wavelength is
// an independent M/M/1/1 offered A/k Erlangs.
func TestNoConversionMatchesPerChannelErlangB(t *testing.T) {
	const k = 8
	conv := wavelength.MustNew(wavelength.Circular, k, 0, 0)
	a := 6.0
	st, err := Run(Config{Conv: conv, ArrivalRate: a, MeanHold: 1, Seed: 13}, 400000)
	if err != nil {
		t.Fatal(err)
	}
	want, err := analysis.ErlangB(1, a/k)
	if err != nil {
		t.Fatal(err)
	}
	got := st.BlockingProbability()
	if math.Abs(got-want) > 0.01+0.05*want {
		t.Fatalf("blocking %v, Erlang-B(1, A/k) %v", got, want)
	}
}

// TestBlockingMonotoneInDegree reproduces the paper's motivating claim:
// blocking falls as conversion degree grows and saturates quickly — small
// d already achieves close to full range performance.
func TestBlockingMonotoneInDegree(t *testing.T) {
	// Moderate load (A = 10 Erlangs on k = 16 channels, ~62% occupancy):
	// the regime the paper's cited analyses [11][13] discuss. At heavy
	// overload the gap between small d and full range closes more slowly.
	const k = 16
	degrees := []int{1, 3, 5, 7, k}
	cfg := Config{ArrivalRate: 10, MeanHold: 1, Seed: 17}
	probs, err := Sweep(wavelength.Circular, k, degrees, cfg, 200000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(probs); i++ {
		if probs[i] > probs[i-1]+0.01 {
			t.Fatalf("blocking not monotone in d: %v", probs)
		}
	}
	if probs[0] < 5*probs[len(probs)-1] {
		t.Fatalf("d=1 should block far more than full range: %v", probs)
	}
	// Saturation: most of the d=1 → full-range improvement is already
	// captured by d=7 (under FCFS first-fit; the paper's cited analyses
	// use the same qualitative claim).
	if probs[3] > 0.2*probs[0] {
		t.Fatalf("d=7 captured too little of the conversion benefit: %v", probs)
	}
}

// TestPoliciesBothFeasible: both policies run and produce comparable
// blocking on the same arrival process.
func TestPoliciesBothFeasible(t *testing.T) {
	conv, err := wavelength.NewSymmetric(wavelength.Circular, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	var probs []float64
	for _, p := range []Policy{FirstFit, RandomFit} {
		st, err := Run(Config{Conv: conv, ArrivalRate: 7, MeanHold: 1, Seed: 19, Policy: p}, 100000)
		if err != nil {
			t.Fatal(err)
		}
		probs = append(probs, st.BlockingProbability())
	}
	if math.Abs(probs[0]-probs[1]) > 0.05 {
		t.Fatalf("policies diverge too much: %v", probs)
	}
}

func TestPolicyString(t *testing.T) {
	if FirstFit.String() != "first-fit" || RandomFit.String() != "random-fit" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy must still render")
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	if _, err := Sweep(wavelength.Circular, 8, []int{2}, Config{ArrivalRate: 1, MeanHold: 1}, 10); err == nil {
		t.Fatal("even degree accepted")
	}
}
