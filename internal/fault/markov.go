package fault

import (
	"fmt"

	"wdmsched/internal/core"
	"wdmsched/internal/traffic"
)

// MarkovConfig parameterizes the stochastic injector: each component is an
// independent two-state (up/down) Markov chain stepped once per slot, with
// the given per-slot transition probabilities. Steady-state unavailability
// of each chain is fail/(fail+repair). A zero probability disables the
// transition, so e.g. ConverterRepair=0 makes converter failures permanent
// and an all-zero config injects nothing.
type MarkovConfig struct {
	N, K int // switch dimensions
	Seed uint64

	ConverterFail   float64 // P[up→down] per converter per slot
	ConverterRepair float64 // P[down→up]
	ChannelDark     float64 // P[up→down] per channel per slot
	ChannelRestore  float64 // P[down→up]
	PortDown        float64 // P[up→down] per output port per slot
	PortUp          float64 // P[down→up]
}

func checkProb(name string, p float64) error {
	if p < 0 || p > 1 || p != p {
		return fmt.Errorf("fault: %s probability %v outside [0, 1]", name, p)
	}
	return nil
}

// Markov flips converters, channels and ports independently each slot.
type Markov struct {
	st   *state
	cfg  MarkovConfig
	rng  *traffic.RNG
	slot int // last slot stepped to
}

// NewMarkov builds the stochastic injector. All randomness derives from
// cfg.Seed, so two injectors with equal configs produce identical fault
// histories regardless of the traffic seed.
func NewMarkov(cfg MarkovConfig) (*Markov, error) {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"ConverterFail", cfg.ConverterFail},
		{"ConverterRepair", cfg.ConverterRepair},
		{"ChannelDark", cfg.ChannelDark},
		{"ChannelRestore", cfg.ChannelRestore},
		{"PortDown", cfg.PortDown},
		{"PortUp", cfg.PortUp},
	} {
		if err := checkProb(p.name, p.v); err != nil {
			return nil, err
		}
	}
	if cfg.N <= 0 || cfg.K <= 0 {
		return nil, fmt.Errorf("fault: need positive dimensions, have N=%d K=%d", cfg.N, cfg.K)
	}
	return &Markov{st: newState(cfg.N, cfg.K), cfg: cfg, rng: traffic.NewRNG(cfg.Seed), slot: -1}, nil
}

// Advance implements Injector: every slot in (previous, slot] is stepped
// exactly once, in order, so the fault history depends only on the seed and
// the final slot number — never on the caller's Advance granularity.
func (m *Markov) Advance(slot int) {
	if slot < m.slot {
		panic(fmt.Sprintf("fault: Advance going backwards, %d after %d", slot, m.slot))
	}
	for m.slot < slot {
		m.slot++
		m.step()
	}
}

// step runs one slot of every chain. The draw order (ports outer, channels
// inner, converter before dark, port chain last) is fixed: it is part of
// the deterministic contract.
func (m *Markov) step() {
	for o := 0; o < m.st.n; o++ {
		changed := false
		for b := 0; b < m.st.k; b++ {
			if m.flip(&m.st.convFailed[o][b], m.cfg.ConverterFail, m.cfg.ConverterRepair) {
				changed = true
			}
			if m.flip(&m.st.dark[o][b], m.cfg.ChannelDark, m.cfg.ChannelRestore) {
				changed = true
			}
		}
		if m.flip(&m.st.portDown[o], m.cfg.PortDown, m.cfg.PortUp) {
			changed = true
		}
		if changed {
			m.st.refresh(o)
		}
	}
}

// flip advances one up/down chain, reporting whether the state changed.
// It draws from the RNG only when the applicable transition has nonzero
// probability, so disabled chains cost nothing and perturb no other draws.
func (m *Markov) flip(down *bool, pFail, pRepair float64) bool {
	p := pFail
	if *down {
		p = pRepair
	}
	if p == 0 {
		return false
	}
	if m.rng.Bernoulli(p) {
		*down = !*down
		return true
	}
	return false
}

// Mask implements Injector.
func (m *Markov) Mask(port int) core.ChannelMask { return m.st.mask(port) }

var _ Injector = (*Markov)(nil)
