package fault

import (
	"fmt"
	"sync"
	"time"

	"wdmsched/internal/metrics"
	"wdmsched/internal/traffic"
)

// TransportConfig parameterizes frame-level fault injection on the cluster
// transport: every frame independently suffers a drop, a delivery delay,
// and/or a duplication with the given probabilities, driven by a seeded
// RNG so a failure scenario replays exactly. The cluster's correctness
// property is that none of this changes the simulation's results — the
// controller's deadlines, retries and local fallback absorb every injected
// fault — so transport injection exercises the degradation machinery, not
// the schedulers.
type TransportConfig struct {
	// Seed drives the injection RNG.
	Seed uint64
	// Drop is the probability a frame is silently discarded.
	Drop float64
	// Duplicate is the probability a frame is delivered twice.
	Duplicate float64
	// Delay is the probability a frame is stalled before delivery.
	Delay float64
	// DelayFor is how long a delayed frame stalls (default 2ms). Set it
	// above the controller's RPC deadline to force deadline misses.
	DelayFor time.Duration
}

// FrameFate is the injector's decision for one frame.
type FrameFate struct {
	Drop      bool
	Duplicate bool
	Delay     time.Duration // 0 = deliver immediately
}

// TransportFaults decides, frame by frame, which injected fault (if any) a
// frame suffers. Safe for concurrent use: the cluster controller's
// per-node workers draw fates in whatever order the scheduler interleaves
// them, which is fine because the cluster's results are fault-independent
// by construction.
type TransportFaults struct {
	mu  sync.Mutex
	rng *traffic.RNG
	cfg TransportConfig

	// Drops, Duplicates and Delays count the faults actually injected;
	// read them live or after the run.
	Drops      metrics.Counter
	Duplicates metrics.Counter
	Delays     metrics.Counter
}

// NewTransportFaults validates the configuration and builds an injector.
func NewTransportFaults(cfg TransportConfig) (*TransportFaults, error) {
	for _, p := range []struct {
		name string
		v    float64
	}{{"Drop", cfg.Drop}, {"Duplicate", cfg.Duplicate}, {"Delay", cfg.Delay}} {
		if p.v < 0 || p.v > 1 {
			return nil, fmt.Errorf("fault: transport %s probability %v outside [0,1]", p.name, p.v)
		}
	}
	if cfg.DelayFor < 0 {
		return nil, fmt.Errorf("fault: negative transport delay %v", cfg.DelayFor)
	}
	if cfg.DelayFor == 0 {
		cfg.DelayFor = 2 * time.Millisecond
	}
	return &TransportFaults{rng: traffic.NewRNG(cfg.Seed), cfg: cfg}, nil
}

// Fate draws the next frame's fate.
func (t *TransportFaults) Fate() FrameFate {
	t.mu.Lock()
	var f FrameFate
	if t.cfg.Drop > 0 && t.rng.Bernoulli(t.cfg.Drop) {
		f.Drop = true
	}
	if t.cfg.Duplicate > 0 && t.rng.Bernoulli(t.cfg.Duplicate) {
		f.Duplicate = true
	}
	if t.cfg.Delay > 0 && t.rng.Bernoulli(t.cfg.Delay) {
		f.Delay = t.cfg.DelayFor
	}
	t.mu.Unlock()
	if f.Drop {
		t.Drops.Inc()
	}
	if f.Duplicate {
		t.Duplicates.Inc()
	}
	if f.Delay > 0 {
		t.Delays.Inc()
	}
	return f
}

// Injected reports the total number of faults injected so far.
func (t *TransportFaults) Injected() int64 {
	return t.Drops.Value() + t.Duplicates.Value() + t.Delays.Value()
}
