package fault

import (
	"testing"

	"wdmsched/internal/core"
)

func TestScriptTimeline(t *testing.T) {
	inj, err := NewScript(2, 4, []Event{
		{Slot: 1, Port: 0, Channel: 2, Kind: ConverterFail},
		{Slot: 3, Port: 0, Channel: 2, Kind: ConverterRepair},
		{Slot: 2, Port: 1, Channel: -1, Kind: ChannelDark},
		{Slot: 4, Port: 1, Channel: 1, Kind: ChannelRestore},
		{Slot: 5, Port: -1, Kind: PortDown},
		{Slot: 6, Port: -1, Kind: PortUp},
	})
	if err != nil {
		t.Fatal(err)
	}

	inj.Advance(0)
	if inj.Mask(0) != nil || inj.Mask(1) != nil {
		t.Fatal("slot 0: expected all-healthy (nil) masks")
	}

	inj.Advance(1)
	m := inj.Mask(0)
	if m == nil || m[2] != core.ConverterFailed {
		t.Fatalf("slot 1 port 0: want converter-failed on channel 2, have %v", m)
	}
	if inj.Mask(1) != nil {
		t.Fatal("slot 1 port 1: expected healthy")
	}

	inj.Advance(2)
	m = inj.Mask(1)
	for b := 0; b < 4; b++ {
		if m[b] != core.Dark {
			t.Fatalf("slot 2 port 1: channel %d = %v, want dark", b, m[b])
		}
	}

	inj.Advance(3)
	if inj.Mask(0) != nil {
		t.Fatal("slot 3 port 0: converter repaired, expected nil mask")
	}

	inj.Advance(4)
	m = inj.Mask(1)
	if m[1] != core.Healthy || m[0] != core.Dark {
		t.Fatalf("slot 4 port 1: want channel 1 restored only, have %v", m)
	}

	inj.Advance(5)
	for o := 0; o < 2; o++ {
		m = inj.Mask(o)
		for b := 0; b < 4; b++ {
			if m[b] != core.Dark {
				t.Fatalf("slot 5 port %d: channel %d = %v, want dark (port down)", o, b, m[b])
			}
		}
	}

	inj.Advance(6)
	if inj.Mask(0) != nil {
		t.Fatal("slot 6 port 0: port back up, expected nil mask")
	}
	// Port 1 keeps its individually dark channels after the port comes up.
	m = inj.Mask(1)
	if m[0] != core.Dark || m[1] != core.Healthy {
		t.Fatalf("slot 6 port 1: want dark channel 0 to survive port flap, have %v", m)
	}
}

func TestScriptSkipAheadAppliesAll(t *testing.T) {
	inj, err := NewScript(1, 2, []Event{
		{Slot: 1, Port: 0, Channel: 0, Kind: ChannelDark},
		{Slot: 2, Port: 0, Channel: 0, Kind: ChannelRestore},
		{Slot: 3, Port: 0, Channel: 1, Kind: ConverterFail},
	})
	if err != nil {
		t.Fatal(err)
	}
	inj.Advance(10)
	m := inj.Mask(0)
	if m == nil || m[0] != core.Healthy || m[1] != core.ConverterFailed {
		t.Fatalf("after skip to slot 10: %v", m)
	}
}

func TestScriptRejectsBadEvents(t *testing.T) {
	cases := []Event{
		{Slot: -1, Port: 0, Channel: 0, Kind: ConverterFail},
		{Slot: 0, Port: 2, Channel: 0, Kind: ConverterFail},
		{Slot: 0, Port: -2, Channel: 0, Kind: ConverterFail},
		{Slot: 0, Port: 0, Channel: 4, Kind: ChannelDark},
		{Slot: 0, Port: 0, Channel: 0, Kind: Kind(99)},
	}
	for _, ev := range cases {
		if _, err := NewScript(2, 4, []Event{ev}); err == nil {
			t.Errorf("event %+v accepted", ev)
		}
	}
}

func TestMarkovDeterministicAndAdvanceGranularity(t *testing.T) {
	cfg := MarkovConfig{
		N: 3, K: 5, Seed: 42,
		ConverterFail: 0.1, ConverterRepair: 0.2,
		ChannelDark: 0.05, ChannelRestore: 0.3,
		PortDown: 0.02, PortUp: 0.5,
	}
	a, err := NewMarkov(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMarkov(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// a advances slot by slot, b jumps straight to the end each time; the
	// histories at common slots must agree.
	for slot := 0; slot < 50; slot += 10 {
		for s := max(0, slot-9); s <= slot; s++ {
			a.Advance(s)
		}
		b.Advance(slot)
		for o := 0; o < cfg.N; o++ {
			ma, mb := a.Mask(o), b.Mask(o)
			if (ma == nil) != (mb == nil) {
				t.Fatalf("slot %d port %d: nil-ness diverged", slot, o)
			}
			for i := range ma {
				if ma[i] != mb[i] {
					t.Fatalf("slot %d port %d channel %d: %v vs %v", slot, o, i, ma[i], mb[i])
				}
			}
		}
	}
}

func TestMarkovZeroConfigInjectsNothing(t *testing.T) {
	m, err := NewMarkov(MarkovConfig{N: 2, K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 100; slot++ {
		m.Advance(slot)
		for o := 0; o < 2; o++ {
			if m.Mask(o) != nil {
				t.Fatalf("slot %d port %d: mask injected with zero probabilities", slot, o)
			}
		}
	}
}

func TestMarkovConvergesToSteadyState(t *testing.T) {
	// fail=repair → steady-state unavailability 1/2 per converter. Count
	// failed converters over a long horizon and expect roughly half.
	cfg := MarkovConfig{N: 1, K: 16, Seed: 99, ConverterFail: 0.2, ConverterRepair: 0.2}
	m, err := NewMarkov(cfg)
	if err != nil {
		t.Fatal(err)
	}
	failed, total := 0, 0
	for slot := 0; slot < 4000; slot++ {
		m.Advance(slot)
		mask := m.Mask(0)
		for b := 0; b < cfg.K; b++ {
			total++
			if mask != nil && mask[b] == core.ConverterFailed {
				failed++
			}
		}
	}
	frac := float64(failed) / float64(total)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("steady-state converter unavailability %.3f, want ≈0.5", frac)
	}
}

func TestMarkovRejectsBadConfig(t *testing.T) {
	if _, err := NewMarkov(MarkovConfig{N: 0, K: 4}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := NewMarkov(MarkovConfig{N: 1, K: 4, ConverterFail: 1.5}); err == nil {
		t.Error("probability > 1 accepted")
	}
	if _, err := NewMarkov(MarkovConfig{N: 1, K: 4, PortDown: -0.1}); err == nil {
		t.Error("negative probability accepted")
	}
}

func TestAdvanceBackwardsPanics(t *testing.T) {
	inj, err := NewScript(1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	inj.Advance(5)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards Advance did not panic")
		}
	}()
	inj.Advance(3)
}
