// Package fault injects deterministic component failures into the slot
// engine: wavelength converters failing and being repaired, channels going
// dark and being restored, and whole output ports flapping.
//
// The paper (Section I) motivates limited-range wavelength conversion with
// the cost and fragility of converter hardware; this package models that
// hardware actually breaking. A fault schedule is a function from slot
// number to a per-output-port core.ChannelMask:
//
//   - A failed converter leaves its channel usable only by requests already
//     on the channel's wavelength (core.ConverterFailed) — the laser still
//     lights, only the conversion stage is gone.
//   - A dark channel (core.Dark) is removed from the fiber entirely.
//   - A down port marks every channel of that port dark.
//
// Two injectors are provided. Script replays an explicit list of timed
// events, for reproducing a specific failure scenario. Markov flips each
// component independently with per-slot fail/repair probabilities, the
// standard two-state availability model, driven by a seeded traffic.RNG so
// every run is reproducible.
//
// Injectors are used from a single goroutine (the switch's slot loop calls
// Advance, then reads each port's mask before fanning out to the per-port
// workers); they are not safe for concurrent use.
package fault

import (
	"fmt"
	"sort"

	"wdmsched/internal/core"
)

// Kind enumerates fault-schedule event types.
type Kind uint8

const (
	// ConverterFail breaks the wavelength converter of a channel: the
	// channel stays usable, but only by its own wavelength.
	ConverterFail Kind = iota
	// ConverterRepair restores a failed converter.
	ConverterRepair
	// ChannelDark removes a channel from service entirely.
	ChannelDark
	// ChannelRestore returns a dark channel to service.
	ChannelRestore
	// PortDown takes a whole output port out of service (all channels
	// dark) until PortUp.
	PortDown
	// PortUp restores a down output port.
	PortUp
)

// String names the event kind.
func (k Kind) String() string {
	switch k {
	case ConverterFail:
		return "converter-fail"
	case ConverterRepair:
		return "converter-repair"
	case ChannelDark:
		return "channel-dark"
	case ChannelRestore:
		return "channel-restore"
	case PortDown:
		return "port-down"
	case PortUp:
		return "port-up"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one timed entry of a scripted fault schedule. It takes effect
// at the start of slot Slot (0-based), before scheduling.
//
// Port -1 means every output port; for channel-scoped kinds Channel -1
// means every channel of the addressed port(s). Port/Channel are ignored
// where they make no sense (Channel for PortDown/PortUp).
type Event struct {
	Slot    int
	Port    int
	Channel int
	Kind    Kind
}

// Injector is a fault schedule the slot engine can consume.
type Injector interface {
	// Advance moves the schedule to the given slot (0-based). Slots must
	// be visited in nondecreasing order.
	Advance(slot int)
	// Mask returns output port's channel-state mask at the current slot,
	// or nil if every channel of the port is healthy (letting schedulers
	// take their exact maskless fast path). The returned slice is owned
	// by the injector and valid until the next Advance.
	Mask(port int) core.ChannelMask
}

// state is the shared fault bookkeeping for both injectors: per-component
// status flags plus the derived per-port masks handed to the engine.
type state struct {
	n, k       int
	convFailed [][]bool // [port][channel]
	dark       [][]bool // [port][channel]
	portDown   []bool
	masks      []core.ChannelMask // [port], re-derived after mutations
	degraded   []bool             // [port], any non-healthy channel
}

func newState(n, k int) *state {
	if n <= 0 || k <= 0 {
		panic(fmt.Sprintf("fault: need positive ports and wavelengths, have n=%d k=%d", n, k))
	}
	s := &state{
		n:          n,
		k:          k,
		convFailed: make([][]bool, n),
		dark:       make([][]bool, n),
		portDown:   make([]bool, n),
		masks:      make([]core.ChannelMask, n),
		degraded:   make([]bool, n),
	}
	for o := 0; o < n; o++ {
		s.convFailed[o] = make([]bool, k)
		s.dark[o] = make([]bool, k)
		s.masks[o] = make(core.ChannelMask, k)
	}
	return s
}

// refresh re-derives port o's mask from the component flags. Dark wins
// over a failed converter on the same channel.
func (s *state) refresh(o int) {
	m := s.masks[o]
	deg := false
	for b := 0; b < s.k; b++ {
		switch {
		case s.portDown[o] || s.dark[o][b]:
			m[b] = core.Dark
			deg = true
		case s.convFailed[o][b]:
			m[b] = core.ConverterFailed
			deg = true
		default:
			m[b] = core.Healthy
		}
	}
	s.degraded[o] = deg
}

func (s *state) mask(port int) core.ChannelMask {
	if !s.degraded[port] {
		return nil
	}
	return s.masks[port]
}

// apply mutates the component flags for one event and refreshes the
// affected ports' masks.
func (s *state) apply(ev Event) {
	ports := []int{ev.Port}
	if ev.Port < 0 {
		ports = ports[:0]
		for o := 0; o < s.n; o++ {
			ports = append(ports, o)
		}
	}
	for _, o := range ports {
		switch ev.Kind {
		case PortDown:
			s.portDown[o] = true
		case PortUp:
			s.portDown[o] = false
		default:
			chans := []int{ev.Channel}
			if ev.Channel < 0 {
				chans = chans[:0]
				for b := 0; b < s.k; b++ {
					chans = append(chans, b)
				}
			}
			for _, b := range chans {
				switch ev.Kind {
				case ConverterFail:
					s.convFailed[o][b] = true
				case ConverterRepair:
					s.convFailed[o][b] = false
				case ChannelDark:
					s.dark[o][b] = true
				case ChannelRestore:
					s.dark[o][b] = false
				default:
					panic(fmt.Sprintf("fault: unknown event kind %v", ev.Kind))
				}
			}
		}
		s.refresh(o)
	}
}

// validate checks an event against the switch dimensions.
func (s *state) validate(ev Event) error {
	if ev.Slot < 0 {
		return fmt.Errorf("fault: event slot %d negative", ev.Slot)
	}
	if ev.Port < -1 || ev.Port >= s.n {
		return fmt.Errorf("fault: event port %d outside [-1, %d)", ev.Port, s.n)
	}
	if ev.Kind > PortUp {
		return fmt.Errorf("fault: unknown event kind %d", ev.Kind)
	}
	if ev.Kind != PortDown && ev.Kind != PortUp {
		if ev.Channel < -1 || ev.Channel >= s.k {
			return fmt.Errorf("fault: event channel %d outside [-1, %d)", ev.Channel, s.k)
		}
	}
	return nil
}

// Script replays an explicit, finite fault schedule.
type Script struct {
	st     *state
	events []Event // sorted by Slot, stable
	next   int     // first unapplied event
	slot   int     // last Advance argument
}

// NewScript builds a scripted injector for an n-port, k-wavelength switch.
// Events are applied in slot order (ties in input order), each taking
// effect at the start of its slot.
func NewScript(n, k int, events []Event) (*Script, error) {
	st := newState(n, k)
	for _, ev := range events {
		if err := st.validate(ev); err != nil {
			return nil, err
		}
	}
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Slot < sorted[j].Slot })
	return &Script{st: st, events: sorted, slot: -1}, nil
}

// Advance implements Injector.
func (s *Script) Advance(slot int) {
	if slot < s.slot {
		panic(fmt.Sprintf("fault: Advance going backwards, %d after %d", slot, s.slot))
	}
	s.slot = slot
	for s.next < len(s.events) && s.events[s.next].Slot <= slot {
		s.st.apply(s.events[s.next])
		s.next++
	}
}

// Mask implements Injector.
func (s *Script) Mask(port int) core.ChannelMask { return s.st.mask(port) }

var _ Injector = (*Script)(nil)
