package soak

import (
	"errors"
	"fmt"
	"strings"

	"wdmsched/internal/telemetry"
)

// ErrNotReplayable marks incidents outside the determinism contract:
// span-* invariants depend on wall-clock span timings, which no replay
// can reproduce. Everything else in an incident bundle — arrivals,
// faults, scheduling, and therefore the conservation/ledger/equivalence/
// bulk counters — derives from recorded seeds alone.
var ErrNotReplayable = errors.New("incident is not deterministically replayable")

// ReplayReport is the outcome of re-running a bundle's recorded window.
type ReplayReport struct {
	// Config is the bundle's embedded run configuration with the slot
	// budget clamped to the incident window.
	Config Config
	// Original is the bundle's incident; nil for requested dumps.
	Original *Incident
	// Replayed is the violation the re-run hit; nil when it ran clean.
	Replayed *Incident
	// Presnap is the bundle's pre-violation snapshot and ReplaySnap the
	// replay's recorded snapshot at the same slot; both non-nil when the
	// baseline comparison is possible.
	Presnap    *telemetry.SnapshotRecord
	ReplaySnap *telemetry.SnapshotRecord
}

// Replay re-runs the simulation a bundle records, deterministically: the
// embedded config seeds every generator, fault chain and scheduler
// exactly as the original run, and the slot budget is clamped one resync
// interval past the incident slot (the original violation, if
// deterministic, must fire inside that window). The wall-clock budget is
// cleared — it is the one config knob a replay cannot honor
// reproducibly. opt.BundlePath and opt.Report are ignored: a replay
// never dumps nested bundles or reports.
func Replay(b *telemetry.Bundle, opt Options) (*ReplayReport, error) {
	cfg, err := BundleConfig(b)
	if err != nil {
		return nil, err
	}
	rep := &ReplayReport{}
	if rep.Original, err = BundleIncident(b); err != nil {
		return nil, err
	}
	if rep.Presnap, err = BundlePresnap(b); err != nil {
		return nil, err
	}
	cfg.Time = 0
	if rep.Original != nil {
		window := rep.Original.Slot + cfg.Resync
		if cfg.Slots <= 0 || cfg.Slots > window {
			cfg.Slots = window
		}
	}
	rep.Config = cfg

	opt.BundlePath = ""
	opt.Report = ""
	h, err := New(cfg, opt)
	if err != nil {
		return nil, fmt.Errorf("rebuilding recorded run: %w", err)
	}
	defer h.Close()
	h.Run()
	rep.Replayed = h.Incident()
	if rep.Presnap != nil {
		for _, s := range h.engines[0].rec.Snapshots() {
			if s.Slot == rep.Presnap.Slot {
				s := s
				rep.ReplaySnap = &s
				break
			}
		}
	}
	return rep, nil
}

// Verify asserts the replay reproduced the bundle's original violation:
// same invariant, engine, slot and detail, and — when the bundle carries
// a pre-violation snapshot still retained by the replay's recorder — an
// identical counter baseline. A nil return is the forensic all-clear:
// the incident is deterministic and the bundle alone reproduces it.
func (r *ReplayReport) Verify() error {
	orig := r.Original
	if orig == nil {
		return errors.New("bundle carries no incident (requested dump?) — nothing to verify")
	}
	if strings.HasPrefix(orig.Invariant, "span-") {
		return fmt.Errorf("%w: %s depends on wall-clock span timings", ErrNotReplayable, orig.Invariant)
	}
	got := r.Replayed
	if got == nil {
		return fmt.Errorf("replay ran %d slots clean: %s violation at slot %d did not reproduce",
			r.Config.Slots, orig.Invariant, orig.Slot)
	}
	if got.Invariant != orig.Invariant || got.Engine != orig.Engine ||
		got.Slot != orig.Slot || got.Detail != orig.Detail {
		return fmt.Errorf("replay diverged: got [%s] engine %s slot %d: %s, want [%s] engine %s slot %d: %s",
			got.Invariant, got.Engine, got.Slot, got.Detail,
			orig.Invariant, orig.Engine, orig.Slot, orig.Detail)
	}
	if r.Presnap != nil && r.ReplaySnap != nil {
		if err := diffSnapshotRecords(r.Presnap, r.ReplaySnap); err != nil {
			return fmt.Errorf("pre-violation baseline at slot %d diverged: %w", r.Presnap.Slot, err)
		}
	}
	return nil
}

func diffSnapshotRecords(want, got *telemetry.SnapshotRecord) error {
	type field struct {
		name string
		w, g int64
	}
	for _, f := range []field{
		{"offered", want.Offered, got.Offered},
		{"granted", want.Granted, got.Granted},
		{"input_blocked", want.InputBlocked, got.InputBlocked},
		{"output_dropped", want.OutputDropped, got.OutputDropped},
		{"preempted", want.Preempted, got.Preempted},
		{"busy_channel_slots", want.BusyChannelSlots, got.BusyChannelSlots},
		{"fault_lost_grants", want.FaultLostGrants, got.FaultLostGrants},
		{"fault_killed", want.FaultKilled, got.FaultKilled},
	} {
		if f.w != f.g {
			return fmt.Errorf("%s: recorded %d, replayed %d", f.name, f.w, f.g)
		}
	}
	if len(want.PerInput) != len(got.PerInput) || len(want.PerChannel) != len(got.PerChannel) {
		return fmt.Errorf("shape: recorded %dx%d, replayed %dx%d",
			len(want.PerInput), len(want.PerChannel), len(got.PerInput), len(got.PerChannel))
	}
	for i := range want.PerInput {
		if want.PerInput[i] != got.PerInput[i] {
			return fmt.Errorf("per_input[%d]: recorded %d, replayed %d", i, want.PerInput[i], got.PerInput[i])
		}
	}
	for b := range want.PerChannel {
		if want.PerChannel[b] != got.PerChannel[b] {
			return fmt.Errorf("per_channel[%d]: recorded %d, replayed %d", b, want.PerChannel[b], got.PerChannel[b])
		}
	}
	return nil
}
