// Package soak is the long-run chaos harness behind cmd/wdmsoak and the
// deterministic replay engine behind cmd/wdmreplay: it composes any
// workload generator with Markov channel/converter faults and cluster
// transport faults, drives every requested engine (sequential,
// distributed, cluster) in lockstep on identical arrivals, and
// continuously checks the invariants the engines guarantee —
// conservation, grant-ledger reconciliation, cross-engine snapshot
// equivalence, and span containment/attribution.
//
// Every engine carries an always-on telemetry.FlightRecorder; on a
// violation, a recovered panic, or an asynchronous RequestDump (SIGQUIT),
// the harness dumps a self-contained incident bundle — run config,
// incident, recorder rings as JSONL, nearest pre-violation snapshot,
// span dumps, node metric scrapes — that Replay can re-run
// deterministically and Verify can assert reproduces the original
// violation.
package soak

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"wdmsched/internal/analysis"
	"wdmsched/internal/cluster"
	"wdmsched/internal/fault"
	"wdmsched/internal/interconnect"
	"wdmsched/internal/spancheck"
	"wdmsched/internal/telemetry"
	"wdmsched/internal/traffic"
	"wdmsched/internal/wavelength"
)

// Config is the full effective run configuration, embedded verbatim in
// incident reports and bundles so a failure is reproducible from the
// artifact alone.
type Config struct {
	Engines   []string      `json:"engines"`
	Workload  string        `json:"workload"`
	N         int           `json:"n"`
	K         int           `json:"k"`
	Kind      string        `json:"kind"`
	D         int           `json:"d"`
	Scheduler string        `json:"scheduler"`
	Load      float64       `json:"load"`
	Alpha     float64       `json:"alpha"`
	Zipf      float64       `json:"zipf"`
	Users     int           `json:"users"`
	Diurnal   int           `json:"diurnal_period"`
	Floor     float64       `json:"diurnal_floor"`
	Hold      float64       `json:"hold"`
	BulkUnits int           `json:"bulk_units"`
	Trace     string        `json:"trace,omitempty"`
	Slots     int64         `json:"slots"`
	Time      time.Duration `json:"time_ns"`
	Resync    int64         `json:"resync"`
	Seed      uint64        `json:"seed"`
	Nodes     int           `json:"nodes"`

	ConvFail   float64       `json:"conv_fail"`
	ConvRepair float64       `json:"conv_repair"`
	Dark       float64       `json:"chan_dark"`
	Restore    float64       `json:"chan_restore"`
	PortDown   float64       `json:"port_down"`
	PortUp     float64       `json:"port_up"`
	TDrop      float64       `json:"transport_drop"`
	TDup       float64       `json:"transport_dup"`
	TDelay     float64       `json:"transport_delay"`
	RPCTimeout time.Duration `json:"rpc_timeout_ns"`

	ChaosBug string `json:"chaosbug,omitempty"`
}

// Validate rejects configurations the harness cannot run. The returned
// errors are user errors (exit 2 territory), not runtime failures.
func (cfg *Config) Validate() error {
	for _, e := range cfg.Engines {
		switch e {
		case "sequential", "distributed", "cluster":
		default:
			return fmt.Errorf("unknown engine %q (want sequential, distributed or cluster)", e)
		}
	}
	if len(cfg.Engines) == 0 {
		return fmt.Errorf("no engines selected")
	}
	if cfg.Slots <= 0 && cfg.Time <= 0 && cfg.Workload != "bulk" {
		return fmt.Errorf("need a budget: -slots, -time, or -workload bulk (which ends when the demand drains)")
	}
	if cfg.Resync <= 0 {
		return fmt.Errorf("-resync must be positive")
	}
	switch cfg.ChaosBug {
	case "", "ledger":
	case "equivalence":
		if len(cfg.Engines) < 2 {
			return fmt.Errorf("-chaosbug equivalence needs at least two engines")
		}
	default:
		return fmt.Errorf("unknown -chaosbug %q (want ledger or equivalence)", cfg.ChaosBug)
	}
	if cfg.Workload == "trace" && cfg.Trace == "" {
		return fmt.Errorf("-workload trace needs -trace")
	}
	return nil
}

// Incident is the JSON report written on the first invariant violation.
type Incident struct {
	Invariant string `json:"invariant"`
	Engine    string `json:"engine,omitempty"`
	Slot      int64  `json:"slot"`
	Detail    string `json:"detail"`
	Wall      string `json:"wall_clock"`
	Config    Config `json:"config"`
}

// Options are the harness's runtime knobs that do not affect the
// simulated run (and therefore are not part of Config or bundles).
type Options struct {
	Stdout io.Writer
	Stderr io.Writer
	// Report is the incident report path; "" skips the report file.
	Report string
	// SpanDir, when set, receives cluster span dumps.
	SpanDir string
	// BundlePath is where incident bundles are dumped on a violation or
	// recovered panic; "" disables bundle dumps. Asynchronous
	// (RequestDump) bundles go next to it with a -sigquit-<slot> suffix.
	BundlePath string
	// Progress is the slot period of progress lines (0 = 25 resyncs).
	Progress int64
	// Tool overrides the producing-tool name stamped into bundle
	// manifests (default "wdmsoak").
	Tool string
	// Quiet suppresses the config and progress output lines (used by
	// replay, whose caller prints its own framing).
	Quiet bool
}

// engine is one lockstep participant: a switch plus its own identically
// seeded generator and fault chain, the grant ledger the harness
// reconciles against the switch's own statistics, and the flight
// recorder taping it all.
type engine struct {
	name     string
	sw       *interconnect.Switch
	gen      traffic.Generator
	bulk     *traffic.BulkTransfer
	rec      *telemetry.FlightRecorder
	traceErr func() error // ctrace decode-error probe, nil otherwise

	buf      []traffic.Packet
	grants   []interconnect.SlotGrant
	seen     int64 // grants observed (pre-chaosbug)
	ledger   int64 // grants admitted to the ledger
	perInput []int64
	snap     interconnect.Snapshot
	skipMod  int64 // chaosbug ledger: drop every skipMod-th grant

	ctrl      *cluster.Controller
	nodes     []*cluster.Node
	nodeRegs  []*telemetry.Registry
	nhScratch []cluster.NodeHealth
	closers   []func() error
}

// Harness is a configured lockstep soak run.
type Harness struct {
	cfg     Config
	opt     Options
	engines []*engine
	start   time.Time
	inc     *Incident   // first violation, for Replay/Verify
	pending atomic.Bool // asynchronous bundle-dump request (SIGQUIT)
}

// New builds the harness's engines. Config errors (unknown workload,
// incompatible flags) come back as errors; the caller maps them to usage
// exits. The harness must be Closed.
func New(cfg Config, opt Options) (*Harness, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opt.Stdout == nil {
		opt.Stdout = io.Discard
	}
	if opt.Stderr == nil {
		opt.Stderr = io.Discard
	}
	if opt.Tool == "" {
		opt.Tool = "wdmsoak"
	}
	h := &Harness{cfg: cfg, opt: opt}
	for i, name := range cfg.Engines {
		e, err := h.buildEngine(i, name)
		if err != nil {
			h.Close()
			return nil, fmt.Errorf("building %s engine: %w", name, err)
		}
		h.engines = append(h.engines, e)
	}
	if cfg.ChaosBug == "ledger" {
		h.engines[0].skipMod = 997
	}
	return h, nil
}

// Close finalizes every switch and tears down cluster nodes/controllers.
func (h *Harness) Close() {
	for _, e := range h.engines {
		if e.sw != nil {
			e.sw.Finalize()
		}
		for _, c := range e.closers {
			c()
		}
	}
	h.engines = nil
}

// Incident returns the first invariant violation the run hit, or nil
// after a clean run. Valid after Run returns.
func (h *Harness) Incident() *Incident { return h.inc }

// RequestDump asks the slot loop to dump an incident bundle at the next
// slot boundary without stopping the run — the SIGQUIT path. Safe from
// any goroutine.
func (h *Harness) RequestDump() { h.pending.Store(true) }

func (h *Harness) buildEngine(index int, name string) (*engine, error) {
	cfg := h.cfg
	e := &engine{name: name, perInput: make([]int64, cfg.N)}

	conv, err := buildConversion(cfg)
	if err != nil {
		return nil, err
	}
	// The arrival seed is identical across engines — byte-identical
	// workloads are what makes the equivalence invariant exact. The
	// equivalence chaosbug perturbs the last engine's seed to prove the
	// checker notices.
	genSeed := cfg.Seed
	if cfg.ChaosBug == "equivalence" && index == len(cfg.Engines)-1 {
		genSeed++
	}
	if err := h.attachWorkload(e, genSeed); err != nil {
		return nil, err
	}

	// Every engine gets its own injector from the same seed: identical
	// fault histories, so degraded-mode statistics must agree too.
	var faults fault.Injector
	if cfg.ConvFail > 0 || cfg.Dark > 0 || cfg.PortDown > 0 {
		faults, err = fault.NewMarkov(fault.MarkovConfig{
			N: cfg.N, K: cfg.K, Seed: cfg.Seed + 101,
			ConverterFail: cfg.ConvFail, ConverterRepair: cfg.ConvRepair,
			ChannelDark: cfg.Dark, ChannelRestore: cfg.Restore,
			PortDown: cfg.PortDown, PortUp: cfg.PortUp,
		})
		if err != nil {
			return nil, err
		}
	}

	// The always-on black box: snapshot cadence = the resync interval, so
	// the recorded counter snapshots line up exactly with the invariant
	// checkpoints and the nearest pre-violation snapshot is the last
	// clean resync.
	e.rec = telemetry.NewFlightRecorder(telemetry.FlightRecorderConfig{
		Ports: cfg.N, SnapshotEvery: cfg.Resync,
	})

	swCfg := interconnect.Config{
		N: cfg.N, Conv: conv, Scheduler: cfg.Scheduler,
		Seed: cfg.Seed, Faults: faults, Recorder: e.rec,
	}
	switch name {
	case "sequential":
	case "distributed":
		swCfg.Distributed = true
	case "cluster":
		ctrl, err := h.startCluster(e, conv)
		if err != nil {
			return nil, err
		}
		swCfg.Remote = ctrl
	}
	sw, err := interconnect.New(swCfg)
	if err != nil {
		return nil, err
	}
	e.sw = sw
	return e, nil
}

// startCluster brings up in-process loopback worker nodes (each with its
// own wdm_node_* registry, scraped into incident bundles) and a traced
// controller with transport fault injection on every link.
func (h *Harness) startCluster(e *engine, conv wavelength.Conversion) (*cluster.Controller, error) {
	cfg := h.cfg
	var addrs []string
	for i := 0; i < cfg.Nodes; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		reg := telemetry.NewRegistry()
		node := cluster.NewNode(cluster.NodeConfig{
			Telemetry: reg,
			Spans:     telemetry.NewSpanTracer(1, 1<<12),
		})
		go node.Serve(ln)
		e.nodes = append(e.nodes, node)
		e.nodeRegs = append(e.nodeRegs, reg)
		e.closers = append(e.closers, node.Close)
		addrs = append(addrs, ln.Addr().String())
	}
	var tf *fault.TransportFaults
	if cfg.TDrop > 0 || cfg.TDup > 0 || cfg.TDelay > 0 {
		var err error
		tf, err = fault.NewTransportFaults(fault.TransportConfig{
			Seed: cfg.Seed + 202, Drop: cfg.TDrop, Duplicate: cfg.TDup, Delay: cfg.TDelay,
		})
		if err != nil {
			return nil, err
		}
	}
	ctrl, err := cluster.NewController(cluster.ControllerConfig{
		Addrs: addrs, N: cfg.N, Conv: conv, Scheduler: cfg.Scheduler,
		Seed: cfg.Seed, DialTimeout: 10 * time.Second, RPCTimeout: cfg.RPCTimeout,
		Faults: tf, Spans: telemetry.NewSpanTracer(1, 1<<12),
	})
	if err != nil {
		return nil, err
	}
	e.ctrl = ctrl
	e.closers = append(e.closers, ctrl.Close)
	return ctrl, nil
}

func buildConversion(cfg Config) (wavelength.Conversion, error) {
	kind, err := wavelength.ParseKind(cfg.Kind)
	if err != nil {
		return wavelength.Conversion{}, err
	}
	if kind == wavelength.Full {
		return wavelength.New(wavelength.Full, cfg.K, 0, 0)
	}
	return wavelength.NewSymmetric(kind, cfg.K, cfg.D)
}

func (h *Harness) attachWorkload(e *engine, seed uint64) error {
	cfg := h.cfg
	tc := traffic.Config{N: cfg.N, K: cfg.K, Seed: seed, Hold: traffic.HoldingTime{Mean: cfg.Hold}}
	var gen traffic.Generator
	var err error
	switch cfg.Workload {
	case "bernoulli":
		gen, err = traffic.NewBernoulli(tc, cfg.Load)
	case "hotspot":
		gen, err = traffic.NewHotspot(tc, cfg.Load, 0, 0.5)
	case "bursty":
		meanOn := 8.0
		gen, err = traffic.NewBursty(tc, meanOn, meanOn*(1-cfg.Load)/cfg.Load)
	case "heavytail":
		gen, err = traffic.NewHeavyTail(tc, cfg.Load, cfg.Alpha, cfg.Zipf)
	case "selfsimilar":
		u := cfg.Users
		if u == 0 {
			u = 12 * cfg.K
		}
		gen, err = traffic.NewSelfSimilar(tc, cfg.Load, cfg.Alpha, u)
	case "bulk":
		demand := traffic.RandomDemand(cfg.N, cfg.BulkUnits, cfg.Seed)
		e.bulk, err = traffic.NewBulkTransfer(tc, demand)
		gen = e.bulk
	case "trace":
		f, err := os.Open(cfg.Trace)
		if err != nil {
			return err
		}
		rd, err := traffic.OpenTraceReader(f)
		if err != nil {
			f.Close()
			return err
		}
		if rd.N() != cfg.N || rd.K() != cfg.K {
			f.Close()
			return fmt.Errorf("trace shape N=%d k=%d disagrees with -n %d -k %d", rd.N(), rd.K(), cfg.N, cfg.K)
		}
		e.traceErr = rd.Err
		e.closers = append(e.closers, rd.Close, f.Close)
		gen = rd.Generator()
	default:
		return fmt.Errorf("unknown workload %q", cfg.Workload)
	}
	if err != nil {
		return err
	}
	if cfg.Diurnal > 0 {
		if cfg.Workload == "bulk" {
			return fmt.Errorf("-diurnal does not compose with the closed-loop bulk workload")
		}
		gen, err = traffic.WithDiurnal(gen, cfg.Diurnal, cfg.Floor, seed+1)
		if err != nil {
			return err
		}
	}
	e.gen = gen
	return nil
}

// Run drives the lockstep loop to its budget or first violation: exit 0
// clean, 1 on a violation (or a recovered panic). Panics escaping an
// engine's slot processing are recovered here — at the slot-loop boundary
// — dumped as a "panic" incident bundle, and reported like any other
// violation rather than crashing the process with the evidence unsaved.
func (h *Harness) Run() (code int) {
	cfg := h.cfg
	h.start = time.Now()
	progressEvery := h.opt.Progress
	if progressEvery <= 0 {
		progressEvery = 25 * cfg.Resync
	}
	if !h.opt.Quiet {
		if raw, err := json.Marshal(cfg); err == nil {
			fmt.Fprintf(h.opt.Stdout, "config         %s\n", raw)
		}
		fmt.Fprintf(h.opt.Stdout, "soak           %s on %s, N=%d k=%d %s/d=%d, seed %d\n",
			h.engines[0].gen.Name(), strings.Join(cfg.Engines, "+"), cfg.N, cfg.K, cfg.Kind, cfg.D, cfg.Seed)
	}

	var slot int64
	defer func() {
		if r := recover(); r != nil {
			code = h.violation(&Incident{Invariant: "panic", Slot: slot,
				Detail: fmt.Sprintf("recovered at slot-loop boundary: %v", r)})
		}
	}()

	stop := ""
	for stop == "" {
		switch {
		case cfg.Slots > 0 && slot >= cfg.Slots:
			stop = "slot budget"
		case cfg.Time > 0 && slot%256 == 0 && time.Since(h.start) >= cfg.Time:
			stop = "time budget"
		}
		if stop != "" {
			break
		}
		for _, e := range h.engines {
			e.buf = e.gen.Generate(int(slot), e.buf[:0])
			if err := e.sw.RunSlot(e.buf); err != nil {
				return h.violation(&Incident{Invariant: "runtime", Engine: e.name, Slot: slot, Detail: err.Error()})
			}
			e.grants = e.sw.LastGrants(e.grants[:0])
			for _, g := range e.grants {
				e.seen++
				if e.skipMod > 0 && e.seen%e.skipMod == 0 {
					continue // chaosbug ledger: this grant vanishes from the books
				}
				e.ledger++
				e.perInput[g.InputFiber]++
				if e.bulk != nil {
					if err := e.bulk.Deliver(g.InputFiber, g.OutputFiber); err != nil {
						return h.violation(&Incident{Invariant: "bulk-delivery", Engine: e.name, Slot: slot, Detail: err.Error()})
					}
				}
			}
		}
		slot++
		if h.pending.Swap(false) {
			// Asynchronous dump request (SIGQUIT): all engines sit at a
			// slot boundary here, so the single-writer rings are safe to
			// read. The run continues afterwards.
			h.dumpAsync(slot)
		}
		if slot%cfg.Resync == 0 {
			h.sampleNodes(slot)
			if inc := h.checkInvariants(slot); inc != nil {
				return h.violation(inc)
			}
			if !h.opt.Quiet && slot%progressEvery == 0 {
				e := h.engines[0]
				fmt.Fprintf(h.opt.Stdout, "slot %-12d offered %-12d granted %-12d lost-to-faults %d\n",
					slot, e.snap.Offered, e.snap.Granted, e.snap.FaultLostGrants)
			}
		}
		if h.engines[0].bulk != nil {
			done := true
			for _, e := range h.engines {
				if !e.bulk.Done() {
					done = false
					break
				}
			}
			if done {
				stop = "bulk drained"
			}
		}
	}

	h.sampleNodes(slot)
	if inc := h.checkInvariants(slot); inc != nil {
		return h.violation(inc)
	}
	if inc := h.checkSpans(slot); inc != nil {
		return h.violation(inc)
	}
	e := h.engines[0]
	fmt.Fprintf(h.opt.Stdout, "stopped        %s after %d slots in %v\n", stop, slot, time.Since(h.start).Round(time.Millisecond))
	fmt.Fprintf(h.opt.Stdout, "totals         offered %d, granted %d, blocked %d, dropped %d, fault-lost %d, fault-killed %d\n",
		e.snap.Offered, e.snap.Granted, e.snap.InputBlocked, e.snap.OutputDropped,
		e.snap.FaultLostGrants, e.snap.FaultKilled)
	if e.bulk != nil {
		demand := traffic.RandomDemand(cfg.N, cfg.BulkUnits, cfg.Seed)
		lb, _ := analysis.OpenShopMakespanLB(demand, cfg.K)
		fmt.Fprintf(h.opt.Stdout, "makespan       %d slots for %d units (open-shop lower bound %d)\n",
			slot, e.bulk.Delivered(), lb)
	}
	fmt.Fprintf(h.opt.Stdout, "soak           ok: %d invariant checks, 0 violations\n", slot/cfg.Resync+1)
	return 0
}

// sampleNodes records one NodeSample per cluster link into the cluster
// engine's flight recorder: per-node link health plus the controller-wide
// RPC aggregates (the cluster runtime aggregates transport counters
// across links, so those are controller totals).
func (h *Harness) sampleNodes(slot int64) {
	for _, e := range h.engines {
		if e.ctrl == nil {
			continue
		}
		st := e.ctrl.ClusterStats()
		p99 := int64(st.RPCLatency.Quantile(0.99))
		e.nhScratch = e.ctrl.NodeHealth(e.nhScratch[:0])
		for _, nh := range e.nhScratch {
			e.rec.RecordNodeSample(telemetry.NodeSample{
				Slot: slot, Node: int32(nh.Shard), Healthy: nh.Healthy, Addr: nh.Addr,
				RemoteItems:   st.RemoteItems.Value(),
				FallbackItems: st.LocalFallbackItems.Value(),
				Retries:       st.Retries.Value(),
				Reconnects:    st.Reconnects.Value(),
				BytesSent:     st.BytesSent.Value(),
				BytesReceived: st.BytesReceived.Value(),
				RPCP99NS:      p99,
			})
		}
	}
}

// checkInvariants snapshots every engine and enforces conservation, the
// grant ledger, and cross-engine equivalence. It returns the first
// violation found, nil when all hold.
func (h *Harness) checkInvariants(slot int64) *Incident {
	for _, e := range h.engines {
		if e.traceErr != nil {
			if err := e.traceErr(); err != nil {
				return &Incident{Invariant: "trace-decode", Engine: e.name, Slot: slot, Detail: err.Error()}
			}
		}
		e.sw.Snapshot(&e.snap)
		if msg := e.snap.Conserved(); msg != "" {
			return &Incident{Invariant: "conservation", Engine: e.name, Slot: slot, Detail: msg}
		}
		if e.ledger != e.snap.Granted {
			return &Incident{Invariant: "ledger", Engine: e.name, Slot: slot,
				Detail: fmt.Sprintf("grant ledger %d != stats granted %d", e.ledger, e.snap.Granted)}
		}
		for f, g := range e.perInput {
			if g != e.snap.PerInput[f] {
				return &Incident{Invariant: "ledger", Engine: e.name, Slot: slot,
					Detail: fmt.Sprintf("per-input[%d] ledger %d != stats %d", f, g, e.snap.PerInput[f])}
			}
		}
		if e.bulk != nil && e.bulk.Delivered() != e.snap.Granted {
			return &Incident{Invariant: "bulk-delivery", Engine: e.name, Slot: slot,
				Detail: fmt.Sprintf("delivered %d != granted %d", e.bulk.Delivered(), e.snap.Granted)}
		}
	}
	ref := h.engines[0]
	for _, e := range h.engines[1:] {
		if msg := ref.snap.Diff(&e.snap); msg != "" {
			return &Incident{Invariant: "equivalence", Engine: ref.name + " vs " + e.name, Slot: slot, Detail: msg}
		}
	}
	return nil
}

// checkSpans dumps and verifies the cluster engine's cross-process spans:
// write the dumps (to SpanDir when set), trim every dump to the slot
// window all span rings still retain, and run the shared wdmtrace -check
// logic on the merged view.
func (h *Harness) checkSpans(slot int64) *Incident {
	var cl *engine
	for _, e := range h.engines {
		if e.ctrl != nil {
			cl = e
		}
	}
	if cl == nil {
		return nil
	}
	dumpOne := func(name string, write func(io.Writer) error) (*spancheck.Dump, error) {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			return nil, err
		}
		if h.opt.SpanDir != "" {
			if err := os.WriteFile(filepath.Join(h.opt.SpanDir, name+".spans"), buf.Bytes(), 0o644); err != nil {
				return nil, err
			}
		}
		return spancheck.ReadDump(name, &buf)
	}
	ctrl, err := dumpOne("ctrl", cl.ctrl.WriteSpans)
	if err != nil {
		return &Incident{Invariant: "span-dump", Engine: cl.name, Slot: slot, Detail: err.Error()}
	}
	var nodes []*spancheck.Dump
	for i, node := range cl.nodes {
		d, err := dumpOne(fmt.Sprintf("node%d", i), node.WriteSpans)
		if err != nil {
			return &Incident{Invariant: "span-dump", Engine: cl.name, Slot: slot, Detail: err.Error()}
		}
		nodes = append(nodes, d)
	}
	trimDumps(append([]*spancheck.Dump{ctrl}, nodes...))
	m, err := spancheck.Merge(ctrl, nodes)
	if err != nil {
		return &Incident{Invariant: "span-merge", Engine: cl.name, Slot: slot, Detail: err.Error()}
	}
	rep, err := m.CheckContainment()
	if err != nil {
		return &Incident{Invariant: "span-containment", Engine: cl.name, Slot: slot, Detail: err.Error()}
	}
	// Attribution only holds when the controller never stalled in retry
	// backoff or deadline waits — that time is deliberately unattributed,
	// so the invariant is meaningful only on a fault-free transport.
	if h.cfg.TDrop == 0 && h.cfg.TDup == 0 && h.cfg.TDelay == 0 {
		if rep, err = m.CheckAttribution(rep); err != nil {
			return &Incident{Invariant: "span-attribution", Engine: cl.name, Slot: slot, Detail: err.Error()}
		}
		fmt.Fprintf(h.opt.Stdout, "spans          containment %d/%d outside windows, attribution %.1f%% of slot time\n",
			rep.Violations, rep.Checked, 100*rep.AttributionRatio)
	} else {
		fmt.Fprintf(h.opt.Stdout, "spans          containment %d/%d outside windows (attribution skipped: transport faults active)\n",
			rep.Violations, rep.Checked)
	}
	return nil
}

// trimDumps drops every span at or below the newest slot any ring had
// already evicted. The tracers keep a bounded ring per lane and lanes
// carry different span counts per slot, so after a long run each lane's
// retained window starts at a different slot; the containment and
// attribution checks are only meaningful over the window every lane still
// covers in full.
func trimDumps(dumps []*spancheck.Dump) {
	lo := int64(0)
	for _, d := range dumps {
		laneMin := map[int32]int64{}
		for _, sp := range d.Spans {
			if m, ok := laneMin[sp.Lane]; !ok || sp.Slot < m {
				laneMin[sp.Lane] = sp.Slot
			}
		}
		for _, m := range laneMin {
			if m+1 > lo {
				lo = m + 1
			}
		}
	}
	for _, d := range dumps {
		kept := d.Spans[:0]
		for _, sp := range d.Spans {
			if sp.Slot >= lo {
				kept = append(kept, sp)
			}
		}
		d.Spans = kept
	}
}

// violation records the incident, writes the report file and incident
// bundle, dumps cluster spans for the CI artifact when SpanDir is set,
// and prints the failure banner. Always returns 1.
func (h *Harness) violation(inc *Incident) int {
	inc.Wall = time.Since(h.start).String()
	inc.Config = h.cfg
	h.inc = inc
	if h.opt.SpanDir != "" {
		for _, e := range h.engines {
			if e.ctrl == nil {
				continue
			}
			writeSpanFile := func(name string, write func(io.Writer) error) {
				var buf bytes.Buffer
				if write(&buf) == nil {
					os.WriteFile(filepath.Join(h.opt.SpanDir, name+".spans"), buf.Bytes(), 0o644)
				}
			}
			writeSpanFile("ctrl", e.ctrl.WriteSpans)
			for i, node := range e.nodes {
				writeSpanFile(fmt.Sprintf("node%d", i), node.WriteSpans)
			}
		}
	}
	if h.opt.Report != "" {
		raw, err := json.MarshalIndent(inc, "", "  ")
		if err == nil {
			err = os.WriteFile(h.opt.Report, append(raw, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(h.opt.Stderr, "%s: writing incident report: %v\n", h.opt.Tool, err)
		}
	}
	if h.opt.BundlePath != "" {
		if err := h.DumpBundle(h.opt.BundlePath, "violation", inc.Slot, inc); err != nil {
			fmt.Fprintf(h.opt.Stderr, "%s: dumping incident bundle: %v\n", h.opt.Tool, err)
		} else {
			fmt.Fprintf(h.opt.Stderr, "%s: incident bundle: %s\n", h.opt.Tool, h.opt.BundlePath)
		}
	}
	suffix := ""
	if h.opt.Report != "" {
		suffix = fmt.Sprintf(" (report: %s)", h.opt.Report)
	}
	fmt.Fprintf(h.opt.Stderr, "%s: INVARIANT VIOLATION [%s] engine %s slot %d: %s%s\n",
		h.opt.Tool, inc.Invariant, inc.Engine, inc.Slot, inc.Detail, suffix)
	return 1
}

// dumpAsync writes a requested (SIGQUIT) bundle next to BundlePath with a
// -sigquit-<slot> suffix so it never clobbers a later violation bundle.
func (h *Harness) dumpAsync(slot int64) {
	if h.opt.BundlePath == "" {
		return
	}
	path := suffixPath(h.opt.BundlePath, fmt.Sprintf("-sigquit-%d", slot))
	if err := h.DumpBundle(path, "sigquit", slot, nil); err != nil {
		fmt.Fprintf(h.opt.Stderr, "%s: dumping requested bundle: %v\n", h.opt.Tool, err)
		return
	}
	fmt.Fprintf(h.opt.Stderr, "%s: flight-recorder bundle (run continues): %s\n", h.opt.Tool, path)
}

// suffixPath inserts suffix before the path's extension(s):
// x.tgz → x-sigquit-7.tgz.
func suffixPath(path, suffix string) string {
	base := path
	var ext string
	for {
		e := filepath.Ext(base)
		if e == "" {
			break
		}
		ext = e + ext
		base = strings.TrimSuffix(base, e)
	}
	return base + suffix + ext
}
