package soak

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"wdmsched/internal/telemetry"
)

// Well-known incident-bundle entry names. Per-engine artifacts live under
// engines/<index>-<name>/ so a run with duplicate engine names still
// produces unique entries.
const (
	BundleConfigName   = "config.json"
	BundleIncidentName = "incident.json"
	BundlePresnapName  = "presnap.json"
)

// DumpBundle writes a self-contained incident bundle: the effective run
// config, the incident (when the dump was triggered by one), the nearest
// pre-violation counter snapshot, and every engine's flight-recorder
// rings as JSONL — plus span dumps and per-node metric scrapes for
// cluster engines. Safe only at a slot boundary (the rings are
// single-writer); Run calls it from violation, panic recovery and the
// RequestDump path, all of which sit at one.
func (h *Harness) DumpBundle(path, trigger string, slot int64, inc *Incident) error {
	start := time.Now()
	w := telemetry.NewBundleWriter(h.opt.Tool, trigger, slot)
	if err := w.AddJSON(BundleConfigName, h.cfg); err != nil {
		return err
	}
	if inc != nil {
		if err := w.AddJSON(BundleIncidentName, inc); err != nil {
			return err
		}
		// The nearest snapshot strictly before the incident slot is the
		// last resync checkpoint that passed — the clean baseline a
		// replay must walk back to.
		if pre := h.engines[0].rec.NearestSnapshotBefore(inc.Slot - 1); pre != nil {
			if err := w.AddJSON(BundlePresnapName, pre); err != nil {
				return err
			}
		}
	}
	for i, e := range h.engines {
		dir := fmt.Sprintf("engines/%d-%s/", i, e.name)
		add := func(name string, fill func(io.Writer) error) error {
			return w.AddFunc(dir+name, fill)
		}
		if err := add("decisions.jsonl", e.rec.Decisions().WriteJSONL); err != nil {
			return err
		}
		if err := add("snapshots.jsonl", e.rec.WriteSnapshotsJSONL); err != nil {
			return err
		}
		if err := add("faults.jsonl", e.rec.WriteFaultsJSONL); err != nil {
			return err
		}
		if err := add("exemplars.jsonl", e.rec.Exemplars().WriteJSONL); err != nil {
			return err
		}
		if e.ctrl == nil {
			continue
		}
		if err := add("nodes.jsonl", e.rec.WriteNodesJSONL); err != nil {
			return err
		}
		if err := add("ctrl.spans", e.ctrl.WriteSpans); err != nil {
			return err
		}
		for j, node := range e.nodes {
			if err := add(fmt.Sprintf("node%d.spans", j), node.WriteSpans); err != nil {
				return err
			}
			reg := e.nodeRegs[j]
			if err := add(fmt.Sprintf("node%d.metrics", j), func(out io.Writer) error {
				return telemetry.WritePrometheus(out, reg.Snapshot())
			}); err != nil {
				return err
			}
		}
	}
	if err := w.WriteFile(path); err != nil {
		return err
	}
	// Book the dump into every recorder's health gauges
	// (wdm_recorder_dumps_total, wdm_recorder_last_dump_seconds).
	d := time.Since(start)
	for _, e := range h.engines {
		e.rec.NoteDump(d)
	}
	return nil
}

// BundleConfig decodes the run configuration embedded in a bundle.
func BundleConfig(b *telemetry.Bundle) (Config, error) {
	var cfg Config
	raw, err := b.File(BundleConfigName)
	if err != nil {
		return cfg, err
	}
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return cfg, fmt.Errorf("bundle %s: %w", BundleConfigName, err)
	}
	return cfg, nil
}

// BundleIncident decodes the incident a bundle was dumped for, or
// (nil, nil) for bundles without one (a requested/SIGQUIT dump).
func BundleIncident(b *telemetry.Bundle) (*Incident, error) {
	if !b.Has(BundleIncidentName) {
		return nil, nil
	}
	raw, err := b.File(BundleIncidentName)
	if err != nil {
		return nil, err
	}
	inc := new(Incident)
	if err := json.Unmarshal(raw, inc); err != nil {
		return nil, fmt.Errorf("bundle %s: %w", BundleIncidentName, err)
	}
	return inc, nil
}

// BundlePresnap decodes the pre-violation counter snapshot, or (nil, nil)
// when the bundle has none (violation at the first resync, or no
// incident at all).
func BundlePresnap(b *telemetry.Bundle) (*telemetry.SnapshotRecord, error) {
	if !b.Has(BundlePresnapName) {
		return nil, nil
	}
	raw, err := b.File(BundlePresnapName)
	if err != nil {
		return nil, err
	}
	pre := new(telemetry.SnapshotRecord)
	if err := json.Unmarshal(raw, pre); err != nil {
		return nil, fmt.Errorf("bundle %s: %w", BundlePresnapName, err)
	}
	return pre, nil
}
