package soak

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wdmsched/internal/telemetry"
	"wdmsched/internal/traffic"
)

// testConfig is a small, fast chaos run: both local engines under Markov
// faults, resync every 250 slots.
func testConfig() Config {
	return Config{
		Engines: []string{"sequential", "distributed"}, Workload: "heavytail",
		N: 4, K: 8, Kind: "circular", D: 3, Scheduler: "exact",
		Load: 0.7, Alpha: 1.5, Zipf: 0.8, Hold: 1,
		Slots: 2000, Resync: 250, Seed: 7, Nodes: 2,
		ConvFail: 0.002, ConvRepair: 0.05, Dark: 0.001, Restore: 0.05,
	}
}

// TestHarnessCleanRun: a fault-free-invariant run exits 0, records one
// counter snapshot per resync, and leaves no incident.
func TestHarnessCleanRun(t *testing.T) {
	var out bytes.Buffer
	h, err := New(testConfig(), Options{Stdout: &out})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if code := h.Run(); code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, out.String())
	}
	if h.Incident() != nil {
		t.Fatalf("clean run left an incident: %+v", h.Incident())
	}
	snaps := h.engines[0].rec.Snapshots()
	if len(snaps) != 8 {
		t.Fatalf("recorded %d snapshots over 2000 slots at resync 250, want 8", len(snaps))
	}
	if !strings.HasPrefix(out.String(), "config         {") {
		t.Fatalf("first output line is not the effective config:\n%s", out.String())
	}
}

// TestChaosbugBundleReplayVerify is the forensic pipeline in one test:
// the ledger chaosbug fires, the violation dumps a bundle, and Replay +
// Verify prove the bundle alone reproduces the incident — including the
// pre-violation counter baseline.
func TestChaosbugBundleReplayVerify(t *testing.T) {
	dir := t.TempDir()
	bundle := filepath.Join(dir, "incident.tgz")
	cfg := testConfig()
	cfg.Slots = 4000
	cfg.ChaosBug = "ledger"
	h, err := New(cfg, Options{BundlePath: bundle})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if code := h.Run(); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	orig := h.Incident()
	if orig == nil || orig.Invariant != "ledger" {
		t.Fatalf("incident %+v, want ledger violation", orig)
	}

	b, err := telemetry.ReadBundleFile(bundle)
	if err != nil {
		t.Fatalf("bundle does not decode: %v", err)
	}
	for _, name := range []string{
		BundleConfigName, BundleIncidentName,
		"engines/0-sequential/decisions.jsonl",
		"engines/0-sequential/snapshots.jsonl",
		"engines/0-sequential/faults.jsonl",
		"engines/0-sequential/exemplars.jsonl",
		"engines/1-distributed/snapshots.jsonl",
	} {
		if !b.Has(name) {
			t.Errorf("bundle missing %s (has %v)", name, b.Names())
		}
	}
	if inc, err := BundleIncident(b); err != nil || inc.Detail != orig.Detail {
		t.Fatalf("bundle incident %+v (%v), want %+v", inc, err, orig)
	}

	rep, err := Replay(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Verify(); err != nil {
		t.Fatalf("replay did not reproduce: %v", err)
	}
	if orig.Slot > cfg.Resync {
		// The violation fired after the first resync, so the bundle must
		// carry a clean pre-violation baseline and the replay must have
		// matched it.
		if rep.Presnap == nil || rep.ReplaySnap == nil {
			t.Fatalf("pre-violation baseline not compared: presnap %v, replay %v", rep.Presnap, rep.ReplaySnap)
		}
	}

	// A tampered incident must fail verification.
	tampered := *rep
	bad := *tampered.Original
	bad.Slot++
	tampered.Original = &bad
	if err := tampered.Verify(); err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("tampered incident verified: %v", err)
	}
}

// TestClusterBundleContents: a cluster-engine bundle carries the node
// rings, span dumps and per-node metric scrapes.
func TestClusterBundleContents(t *testing.T) {
	dir := t.TempDir()
	bundle := filepath.Join(dir, "incident.tgz")
	cfg := testConfig()
	cfg.Engines = []string{"cluster"}
	cfg.Slots = 500
	h, err := New(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if code := h.Run(); code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if err := h.DumpBundle(bundle, "request", cfg.Slots, nil); err != nil {
		t.Fatal(err)
	}
	b, err := telemetry.ReadBundleFile(bundle)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"engines/0-cluster/nodes.jsonl",
		"engines/0-cluster/ctrl.spans",
		"engines/0-cluster/node0.spans",
		"engines/0-cluster/node1.spans",
		"engines/0-cluster/node0.metrics",
		"engines/0-cluster/node1.metrics",
	} {
		if !b.Has(name) {
			t.Errorf("cluster bundle missing %s (has %v)", name, b.Names())
		}
	}
	raw, err := b.File("engines/0-cluster/node0.metrics")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "wdm_node_") {
		t.Errorf("node metric scrape carries no wdm_node_* series:\n%s", raw)
	}
	if inc, err := BundleIncident(b); inc != nil || err != nil {
		t.Fatalf("requested dump decoded an incident: %v, %v", inc, err)
	}
	if _, err := Replay(b, Options{}); err != nil {
		t.Fatalf("replay of a requested dump: %v", err)
	}
}

// TestRequestDump: an asynchronous dump request (the SIGQUIT path) writes
// a suffixed bundle at the next slot boundary and the run continues to a
// clean exit.
func TestRequestDump(t *testing.T) {
	dir := t.TempDir()
	bundle := filepath.Join(dir, "incident.tgz")
	cfg := testConfig()
	cfg.Slots = 500
	var errb bytes.Buffer
	h, err := New(cfg, Options{Stderr: &errb, BundlePath: bundle})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	h.RequestDump()
	if code := h.Run(); code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, errb.String())
	}
	want := filepath.Join(dir, "incident-sigquit-1.tgz")
	b, err := telemetry.ReadBundleFile(want)
	if err != nil {
		t.Fatalf("requested bundle not written: %v\nstderr: %s", err, errb.String())
	}
	if b.Manifest.Trigger != "sigquit" || b.Manifest.Slot != 1 {
		t.Errorf("manifest %+v, want sigquit at slot 1", b.Manifest)
	}
	if _, err := os.Stat(bundle); !os.IsNotExist(err) {
		t.Errorf("clean run wrote a violation bundle: %v", err)
	}
}

// panicGen wraps a generator and panics at a chosen slot — the fault a
// recovered slot-loop boundary must turn into a "panic" incident bundle.
type panicGen struct {
	traffic.Generator
	at int
}

func (p panicGen) Generate(slot int, buf []traffic.Packet) []traffic.Packet {
	if slot == p.at {
		panic("injected test panic")
	}
	return p.Generator.Generate(slot, buf)
}

// TestPanicBundle: a panic escaping slot processing is recovered at the
// loop boundary, dumped as an incident bundle, and reported as exit 1 —
// not a crashed process with the evidence unsaved.
func TestPanicBundle(t *testing.T) {
	dir := t.TempDir()
	bundle := filepath.Join(dir, "incident.tgz")
	var errb bytes.Buffer
	h, err := New(testConfig(), Options{Stderr: &errb, BundlePath: bundle})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	h.engines[0].gen = panicGen{Generator: h.engines[0].gen, at: 300}
	if code := h.Run(); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	inc := h.Incident()
	if inc == nil || inc.Invariant != "panic" || !strings.Contains(inc.Detail, "injected test panic") {
		t.Fatalf("incident %+v, want recovered panic", inc)
	}
	b, err := telemetry.ReadBundleFile(bundle)
	if err != nil {
		t.Fatalf("panic bundle not written: %v\nstderr: %s", err, errb.String())
	}
	if b.Manifest.Trigger != "violation" {
		t.Errorf("manifest trigger %q", b.Manifest.Trigger)
	}
}

// TestVerifyRefusals: incidents outside the determinism contract are
// refused, and a missing incident is an explicit error.
func TestVerifyRefusals(t *testing.T) {
	rep := &ReplayReport{}
	if err := rep.Verify(); err == nil || !strings.Contains(err.Error(), "no incident") {
		t.Fatalf("verify without incident: %v", err)
	}
	rep.Original = &Incident{Invariant: "span-containment"}
	if err := rep.Verify(); err == nil || !strings.Contains(err.Error(), "not deterministically replayable") {
		t.Fatalf("span incident not refused: %v", err)
	}
	rep.Original = &Incident{Invariant: "ledger", Slot: 500}
	if err := rep.Verify(); err == nil || !strings.Contains(err.Error(), "did not reproduce") {
		t.Fatalf("clean replay verified: %v", err)
	}
}

func TestSuffixPath(t *testing.T) {
	for in, want := range map[string]string{
		"incident.tgz":        "incident-x.tgz",
		"incident.tar.gz":     "incident-x.tar.gz",
		"dir.v1/incident.tgz": "dir.v1/incident-x.tgz",
		"incident":            "incident-x",
	} {
		if got := suffixPath(in, "-x"); got != want {
			t.Errorf("suffixPath(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestConfigValidate mirrors the CLI usage-error cases.
func TestConfigValidate(t *testing.T) {
	cases := map[string]func(*Config){
		"no engines":       func(c *Config) { c.Engines = nil },
		"bad engine":       func(c *Config) { c.Engines = []string{"quantum"} },
		"no budget":        func(c *Config) { c.Slots, c.Time = 0, 0 },
		"bad resync":       func(c *Config) { c.Resync = 0 },
		"bad chaosbug":     func(c *Config) { c.ChaosBug = "gremlins" },
		"equiv one engine": func(c *Config) { c.Engines = []string{"sequential"}; c.ChaosBug = "equivalence" },
		"trace sans path":  func(c *Config) { c.Workload = "trace" },
	}
	for name, mutate := range cases {
		cfg := testConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	cfg := testConfig()
	if err := cfg.Validate(); err != nil {
		t.Errorf("base config rejected: %v", err)
	}
}
