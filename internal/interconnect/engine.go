package interconnect

import (
	"sync"
	"time"

	"wdmsched/internal/telemetry"
)

// engine is the distributed execution backend: one long-lived worker
// goroutine per output port, started once at switch construction and woken
// every slot, realizing the paper's "N independent schedulers" claim
// without the goroutine churn of spawning N goroutines per slot.
//
// Determinism: worker o exclusively owns port o (its scheduler, selector,
// and scratch), arrival partitioning happens before the fan-out, and the
// switch consumes results only after the slot barrier — so a distributed
// run is a pure reordering of independent per-port computations and
// produces results identical to the sequential loop.
//
// Memory model: the wake-channel send publishes the switch's writes (the
// per-port arrival slices, fault masks and slot numbers) to the worker,
// and slot.Done/slot.Wait publish the worker's writes (results, port
// state, trace events) back — no locks on the hot path and nothing
// allocated per slot. Busy time goes through EngineStats' atomic
// accumulators so live telemetry can read it mid-run.
type engine struct {
	ports    []*outputPort
	arrivals [][]arrival   // switch-owned per-port arrival scratch (stable outer slice)
	results  [][]portGrant // switch-owned per-port grant buffers (stable outer slice)
	es       *EngineStats  // atomic per-port busy accumulation

	wake []chan struct{} // per-worker slot triggers (buffered, cap 1)
	stop chan struct{}   // closed exactly once on shutdown

	slot sync.WaitGroup // per-slot completion barrier
	done sync.WaitGroup // worker lifecycle
	off  sync.Once
}

// newEngine starts one worker per port. arrivals and results must be the
// switch's per-slot scratch slices: the workers index into them directly,
// so their outer slices must never be reallocated.
func newEngine(ports []*outputPort, arrivals [][]arrival, results [][]portGrant, es *EngineStats) *engine {
	n := len(ports)
	e := &engine{
		ports:    ports,
		arrivals: arrivals,
		results:  results,
		es:       es,
		wake:     make([]chan struct{}, n),
		stop:     make(chan struct{}),
	}
	e.done.Add(n)
	for o := 0; o < n; o++ {
		e.wake[o] = make(chan struct{}, 1)
		go e.worker(o)
	}
	return e
}

// worker is the persistent per-port loop: wait for a slot trigger, run the
// port's scheduling pipeline, report completion; exit when stop closes.
func (e *engine) worker(o int) {
	defer e.done.Done()
	port := e.ports[o]
	for {
		select {
		case <-e.stop:
			return
		case <-e.wake[o]:
			start := time.Now()
			e.results[o] = port.runSlot(e.arrivals[o])
			d := time.Since(start)
			e.es.addBusy(o, d)
			if t := port.tracer; t != nil {
				t.Emit(o, telemetry.Event{
					Slot: port.slot, Lane: int32(o), Kind: telemetry.EvSlotLatency,
					Fiber: -1, Wave: -1, Channel: -1, Value: int64(d),
				})
			}
			e.slot.Done()
		}
	}
}

// runSlot triggers every worker for the current slot and blocks until all
// ports have produced their grants. Allocation-free: a WaitGroup add and n
// buffered-channel sends.
func (e *engine) runSlot() {
	e.slot.Add(len(e.ports))
	for _, ch := range e.wake {
		ch <- struct{}{}
	}
	e.slot.Wait()
}

// shutdown stops the workers and waits for them to exit. Idempotent; called
// from Finalize and, as a leak backstop, from a runtime cleanup when a
// switch is dropped without finalizing.
func (e *engine) shutdown() {
	e.off.Do(func() {
		close(e.stop)
		e.done.Wait()
	})
}
