package interconnect

import (
	"strings"
	"sync"
	"testing"

	"wdmsched/internal/fault"
	"wdmsched/internal/telemetry"
	"wdmsched/internal/traffic"
)

// traceVariants are the interconnect configurations the tracer must agree
// with Stats on: both engines, with and without disturb-mode rescheduling
// and fault injection.
func traceVariants(t *testing.T) []struct {
	name string
	cfg  Config
} {
	t.Helper()
	const n, k = 4, 8
	markov := func(seed uint64) fault.Injector {
		inj, err := fault.NewMarkov(fault.MarkovConfig{
			N: n, K: k, Seed: seed,
			ConverterFail: 0.01, ConverterRepair: 0.2,
			ChannelDark: 0.005, ChannelRestore: 0.2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return inj
	}
	return []struct {
		name string
		cfg  Config
	}{
		{"sequential", Config{N: n, Conv: circ(k, 1, 1), Seed: 1}},
		{"distributed", Config{N: n, Conv: circ(k, 1, 1), Seed: 1, Distributed: true}},
		{"disturb", Config{N: n, Conv: circ(k, 1, 1), Seed: 2, Disturb: true}},
		{"disturb-distributed", Config{N: n, Conv: circ(k, 1, 1), Seed: 2, Disturb: true, Distributed: true}},
		{"bfa", Config{N: n, Conv: circ(k, 1, 1), Seed: 3, Scheduler: "break-first-available"}},
		{"faults", Config{N: n, Conv: circ(k, 1, 1), Seed: 4, Faults: markov(11)}},
		{"faults-distributed", Config{N: n, Conv: circ(k, 1, 1), Seed: 4, Faults: markov(11), Distributed: true}},
		{"classes", Config{N: n, Conv: circ(k, 1, 1), Seed: 5, PriorityClasses: 2}},
	}
}

// TestTraceEventCountsMatchStats is the tracer's exactness guarantee: over
// a run whose rings are big enough to retain everything, grant events
// equal Stats.Granted, preempt events equal Stats.Preempted, fault kills
// equal Stats.Fault.KilledConnections, and reject events partition into
// InputBlocked + OutputDropped — per configuration and engine.
func TestTraceEventCountsMatchStats(t *testing.T) {
	for _, v := range traceVariants(t) {
		t.Run(v.name, func(t *testing.T) {
			const slots = 300
			cfg := v.cfg
			cfg.Trace = telemetry.NewDecisionTracer(cfg.N, 1<<16)
			sw := mustSwitch(t, cfg)
			gen, err := traffic.NewBernoulli(traffic.Config{N: cfg.N, K: sw.K(), Seed: 99,
				Hold: traffic.HoldingTime{Mean: 3}}, 0.9)
			if err != nil {
				t.Fatal(err)
			}
			var genCls traffic.Generator = gen
			if cfg.PriorityClasses > 1 {
				genCls, err = traffic.WithPriorities(gen, []float64{0.2, 0.8}, 7)
				if err != nil {
					t.Fatal(err)
				}
			}
			st, err := sw.Run(genCls, slots)
			if err != nil {
				t.Fatal(err)
			}
			if cfg.Trace.Dropped() != 0 {
				t.Fatalf("ring overflowed: %d dropped", cfg.Trace.Dropped())
			}

			var grants, regrants, rejects, inputBlocked, preempts, kills, breaks, latencies int64
			perSlotGrants := make(map[int64]int64)
			for _, e := range cfg.Trace.Events() {
				switch e.Kind {
				case telemetry.EvGrant:
					grants++
					perSlotGrants[e.Slot]++
				case telemetry.EvRegrant:
					regrants++
				case telemetry.EvReject:
					rejects++
					if e.Reason == telemetry.ReasonInputBlocked {
						inputBlocked++
					}
				case telemetry.EvPreempt:
					preempts++
				case telemetry.EvFaultKill:
					kills++
				case telemetry.EvBreakEdge:
					breaks++
				case telemetry.EvSlotLatency:
					latencies++
				}
			}
			if grants != st.Granted.Value() {
				t.Errorf("grant events = %d, Stats.Granted = %d", grants, st.Granted.Value())
			}
			if preempts != st.Preempted.Value() {
				t.Errorf("preempt events = %d, Stats.Preempted = %d", preempts, st.Preempted.Value())
			}
			if inputBlocked != st.InputBlocked.Value() {
				t.Errorf("input-blocked events = %d, Stats.InputBlocked = %d",
					inputBlocked, st.InputBlocked.Value())
			}
			if want := st.InputBlocked.Value() + st.OutputDropped.Value(); rejects != want {
				t.Errorf("reject events = %d, InputBlocked+OutputDropped = %d", rejects, want)
			}
			if st.Fault != nil && kills != st.Fault.KilledConnections.Value() {
				t.Errorf("fault-kill events = %d, Stats.Fault.KilledConnections = %d",
					kills, st.Fault.KilledConnections.Value())
			}
			if latencies != int64(slots*cfg.N) {
				t.Errorf("slot-latency events = %d, want %d", latencies, slots*cfg.N)
			}
			if v.name == "bfa" && breaks == 0 {
				t.Error("BFA run produced no break-edge events")
			}
			if cfg.Disturb && regrants == 0 {
				t.Error("disturb run produced no regrant events")
			}
			// Sanity on the per-slot view: grants per slot never exceed N·k.
			for slot, g := range perSlotGrants {
				if g > int64(cfg.N*sw.K()) {
					t.Errorf("slot %d has %d grants > N·k", slot, g)
				}
			}
		})
	}
}

// TestTraceMatchesUntracedRun checks tracing is observation-only: a traced
// run produces byte-identical statistics to an untraced run of the same
// seed and engine.
func TestTraceMatchesUntracedRun(t *testing.T) {
	for _, distributed := range []bool{false, true} {
		const n, k, slots = 4, 8, 200
		run := func(tr *telemetry.DecisionTracer) *Stats {
			sw := mustSwitch(t, Config{
				N: n, Conv: circ(k, 1, 1), Seed: 6, Disturb: true,
				Distributed: distributed, Trace: tr,
			})
			gen, err := traffic.NewBernoulli(traffic.Config{N: n, K: k, Seed: 42,
				Hold: traffic.HoldingTime{Mean: 2}}, 0.8)
			if err != nil {
				t.Fatal(err)
			}
			st, err := sw.Run(gen, slots)
			if err != nil {
				t.Fatal(err)
			}
			return st
		}
		plain := run(nil)
		traced := run(telemetry.NewDecisionTracer(n, 1<<15))
		if plain.Granted.Value() != traced.Granted.Value() ||
			plain.OutputDropped.Value() != traced.OutputDropped.Value() ||
			plain.Preempted.Value() != traced.Preempted.Value() ||
			plain.BusyChannelSlots.Value() != traced.BusyChannelSlots.Value() {
			t.Errorf("distributed=%v: traced run diverged from untraced run", distributed)
		}
	}
}

// TestRunSlotNoAllocsWithTracer extends the steady-state zero-alloc
// guarantee to tracing-enabled runs: the ring-buffer emission path must
// not allocate either, in both engines.
func TestRunSlotNoAllocsWithTracer(t *testing.T) {
	for _, mode := range []struct {
		name        string
		distributed bool
	}{{"sequential", false}, {"distributed", true}} {
		t.Run(mode.name, func(t *testing.T) {
			const n, k = 8, 16
			tr := telemetry.NewDecisionTracer(n, 1<<12)
			sw := mustSwitch(t, Config{
				N: n, Conv: circ(k, 1, 1), Seed: 5, Distributed: mode.distributed,
				Trace: tr,
			})
			slots := prerecord(t, n, k, 64, 1.0, 9)
			for pass := 0; pass < 4; pass++ {
				for _, pkts := range slots {
					if err := sw.RunSlot(pkts); err != nil {
						t.Fatal(err)
					}
				}
			}
			i := 0
			allocs := testing.AllocsPerRun(200, func() {
				if err := sw.RunSlot(slots[i%len(slots)]); err != nil {
					t.Fatal(err)
				}
				i++
			})
			sw.Finalize()
			if allocs != 0 {
				t.Errorf("traced steady-state RunSlot allocates %v per slot, want 0", allocs)
			}
		})
	}
}

// TestTelemetryLiveScrape hammers Registry.Snapshot from scraper
// goroutines while the simulation runs in both engines — under -race this
// is the live-read safety gate for the atomic metric refactor.
func TestTelemetryLiveScrape(t *testing.T) {
	for _, mode := range []struct {
		name        string
		distributed bool
	}{{"sequential", false}, {"distributed", true}} {
		t.Run(mode.name, func(t *testing.T) {
			const n, k, slots = 4, 8, 400
			reg := telemetry.NewRegistry()
			tr := telemetry.NewDecisionTracer(n, 1<<10)
			inj, err := fault.NewMarkov(fault.MarkovConfig{
				N: n, K: k, Seed: 3,
				ConverterFail: 0.01, ConverterRepair: 0.2,
			})
			if err != nil {
				t.Fatal(err)
			}
			sw := mustSwitch(t, Config{
				N: n, Conv: circ(k, 1, 1), Seed: 8, Distributed: mode.distributed,
				Telemetry: reg, Trace: tr, Faults: inj,
			})
			gen, err := traffic.NewBernoulli(traffic.Config{N: n, K: k, Seed: 21,
				Hold: traffic.HoldingTime{Mean: 2}}, 0.9)
			if err != nil {
				t.Fatal(err)
			}

			stop := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < 3; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
							var sb strings.Builder
							if err := telemetry.WritePrometheus(&sb, reg.Snapshot()); err != nil {
								t.Error(err)
								return
							}
						}
					}
				}()
			}
			st, err := sw.Run(gen, slots)
			close(stop)
			wg.Wait()
			if err != nil {
				t.Fatal(err)
			}

			// Post-run the registry must agree exactly with Stats.
			snap := reg.Snapshot()
			get := func(name string) float64 {
				for _, m := range snap {
					if m.Name == name && len(m.Labels) == 0 {
						return m.Value
					}
				}
				t.Fatalf("metric %s not in snapshot", name)
				return 0
			}
			if got := get("wdm_offered_packets_total"); got != float64(st.Offered.Value()) {
				t.Errorf("offered: registry %v, stats %d", got, st.Offered.Value())
			}
			if got := get("wdm_granted_packets_total"); got != float64(st.Granted.Value()) {
				t.Errorf("granted: registry %v, stats %d", got, st.Granted.Value())
			}
			if got := get("wdm_slots_total"); got != float64(st.Slots) {
				t.Errorf("slots: registry %v, stats %d", got, st.Slots)
			}
			if got := get("wdm_busy_channel_slots_total"); got != float64(st.BusyChannelSlots.Value()) {
				t.Errorf("busy: registry %v, stats %d", got, st.BusyChannelSlots.Value())
			}
			if got := get("wdm_fault_lost_grants_total"); got != float64(st.Fault.LostGrants.Value()) {
				t.Errorf("lost grants: registry %v, stats %d", got, st.Fault.LostGrants.Value())
			}
		})
	}
}

// TestTracerPortMismatch checks New rejects a tracer sized for a different
// switch.
func TestTracerPortMismatch(t *testing.T) {
	_, err := New(Config{N: 4, Conv: circ(8, 1, 1), Trace: telemetry.NewDecisionTracer(8, 16)})
	if err == nil {
		t.Fatal("want error for tracer/switch port mismatch")
	}
}
