package interconnect

import (
	"testing"

	"wdmsched/internal/fault"
	"wdmsched/internal/traffic"
	"wdmsched/internal/wavelength"
)

// faultRun drives a fresh switch for slots slots of Bernoulli traffic.
func faultRun(t *testing.T, cfg Config, load float64, slots int) *Stats {
	t.Helper()
	sw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := traffic.NewBernoulli(traffic.Config{
		N: cfg.N, K: cfg.Conv.K(), Seed: cfg.Seed + 1,
		Hold: traffic.HoldingTime{Mean: 2},
	}, load)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sw.Run(gen, slots)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// requireStatsEqual compares every traffic-level statistic of two runs.
func requireStatsEqual(t *testing.T, label string, a, b *Stats) {
	t.Helper()
	if a.Slots != b.Slots ||
		a.Offered.Value() != b.Offered.Value() ||
		a.Granted.Value() != b.Granted.Value() ||
		a.InputBlocked.Value() != b.InputBlocked.Value() ||
		a.OutputDropped.Value() != b.OutputDropped.Value() ||
		a.Preempted.Value() != b.Preempted.Value() ||
		a.BusyChannelSlots.Value() != b.BusyChannelSlots.Value() {
		t.Fatalf("%s: counters diverged: {o=%d g=%d ib=%d od=%d p=%d bs=%d} vs {o=%d g=%d ib=%d od=%d p=%d bs=%d}",
			label,
			a.Offered.Value(), a.Granted.Value(), a.InputBlocked.Value(),
			a.OutputDropped.Value(), a.Preempted.Value(), a.BusyChannelSlots.Value(),
			b.Offered.Value(), b.Granted.Value(), b.InputBlocked.Value(),
			b.OutputDropped.Value(), b.Preempted.Value(), b.BusyChannelSlots.Value())
	}
	for f := range a.PerInputGranted {
		if a.PerInputGranted[f] != b.PerInputGranted[f] {
			t.Fatalf("%s: per-input grants diverged at fiber %d: %d vs %d",
				label, f, a.PerInputGranted[f], b.PerInputGranted[f])
		}
	}
	for c := range a.PerChannelBusy {
		if a.PerChannelBusy[c] != b.PerChannelBusy[c] {
			t.Fatalf("%s: per-channel busy diverged at channel %d: %d vs %d",
				label, c, a.PerChannelBusy[c], b.PerChannelBusy[c])
		}
	}
	for v := 0; v <= len(a.PerChannelBusy); v++ {
		if a.MatchSizes.Bucket(v) != b.MatchSizes.Bucket(v) {
			t.Fatalf("%s: match-size histogram diverged at %d: %d vs %d",
				label, v, a.MatchSizes.Bucket(v), b.MatchSizes.Bucket(v))
		}
	}
}

// TestZeroFaultEquivalence is the acceptance gate for the fault layer's
// transparency: a switch with no injector, one with an empty script, and
// one with an all-zero Markov config must produce identical statistics
// packet for packet, across schedulers, modes and backends.
func TestZeroFaultEquivalence(t *testing.T) {
	conv := wavelength.MustNew(wavelength.Circular, 8, 1, 1)
	for _, sched := range []string{"exact", "break-first-available", "shortest-edge", "hopcroft-karp"} {
		for _, disturb := range []bool{false, true} {
			for _, distributed := range []bool{false, true} {
				base := Config{
					N: 4, Conv: conv, Scheduler: sched, Seed: 7,
					Disturb: disturb, Distributed: distributed,
				}
				want := faultRun(t, base, 0.8, 80)

				scripted := base
				inj, err := fault.NewScript(4, 8, nil)
				if err != nil {
					t.Fatal(err)
				}
				scripted.Faults = inj
				got := faultRun(t, scripted, 0.8, 80)
				label := sched
				if disturb {
					label += "+disturb"
				}
				if distributed {
					label += "+dist"
				}
				requireStatsEqual(t, label+" empty-script", want, got)
				if got.Fault == nil || got.Fault.DegradedSlots.Value() != 0 ||
					got.Fault.LostGrants.Value() != 0 || got.Fault.KilledConnections.Value() != 0 {
					t.Fatalf("%s: empty script reported degradation: %+v", label, got.Fault)
				}

				markov := base
				m, err := fault.NewMarkov(fault.MarkovConfig{N: 4, K: 8, Seed: 3})
				if err != nil {
					t.Fatal(err)
				}
				markov.Faults = m
				requireStatsEqual(t, label+" zero-markov", want, faultRun(t, markov, 0.8, 80))
			}
		}
	}
}

// TestZeroFaultEquivalencePriorityClasses covers the QoS scheduling path.
func TestZeroFaultEquivalencePriorityClasses(t *testing.T) {
	conv := wavelength.MustNew(wavelength.Circular, 6, 1, 1)
	base := Config{N: 3, Conv: conv, Seed: 11, PriorityClasses: 3}
	want := faultRun(t, base, 0.9, 60)
	inj, err := fault.NewScript(3, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	withInj := base
	withInj.Faults = inj
	got := faultRun(t, withInj, 0.9, 60)
	requireStatsEqual(t, "priority", want, got)
	for c := range want.PerClassGranted {
		if want.PerClassGranted[c] != got.PerClassGranted[c] {
			t.Fatalf("class %d grants diverged: %d vs %d", c, want.PerClassGranted[c], got.PerClassGranted[c])
		}
	}
}

// TestScriptedDarkChannelKillsConnection: a multi-slot connection whose
// channel goes dark mid-hold is aborted, counted, and its input channel
// freed for new traffic.
func TestScriptedDarkChannelKillsConnection(t *testing.T) {
	conv := wavelength.MustNew(wavelength.Circular, 2, 0, 0)
	inj, err := fault.NewScript(1, 2, []fault.Event{
		{Slot: 2, Port: 0, Channel: 0, Kind: fault.ChannelDark},
	})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := New(Config{N: 1, Conv: conv, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	// Slot 0: one 10-slot connection on (input 0, λ0) → channel 0.
	long := []traffic.Packet{{InputFiber: 0, DestFiber: 0, Wavelength: 0, Duration: 10}}
	if err := sw.RunSlot(long); err != nil {
		t.Fatal(err)
	}
	// Slot 1: same input channel is held — a new packet is input-blocked.
	if err := sw.RunSlot(long[:1]); err != nil {
		t.Fatal(err)
	}
	// Slot 2: channel 0 goes dark, aborting the connection.
	if err := sw.RunSlot(nil); err != nil {
		t.Fatal(err)
	}
	// Slot 3: the input channel must be free again; λ0 can only reach the
	// dark channel 0 under no-conversion, so the packet is dropped at the
	// output rather than input-blocked.
	if err := sw.RunSlot(long[:1]); err != nil {
		t.Fatal(err)
	}
	st := sw.Finalize()
	if st.Fault.KilledConnections.Value() != 1 {
		t.Fatalf("killed connections = %d, want 1", st.Fault.KilledConnections.Value())
	}
	if st.InputBlocked.Value() != 1 {
		t.Fatalf("input blocked = %d, want 1 (slot-1 packet only)", st.InputBlocked.Value())
	}
	if st.Fault.DarkChannelSlots.Value() != 2 {
		t.Fatalf("dark channel-slots = %d, want 2 (slots 2 and 3)", st.Fault.DarkChannelSlots.Value())
	}
	if got := st.OutputDropped.Value(); got != 1 {
		t.Fatalf("output dropped = %d, want 1 (slot-3 packet against dark channel)", got)
	}
}

// TestSeqDistEquivalenceUnderFaults: the distributed backend must remain a
// pure reordering of the sequential one when ports read fault masks; run
// under -race this also proves the mask handoff is properly ordered.
func TestSeqDistEquivalenceUnderFaults(t *testing.T) {
	conv := wavelength.MustNew(wavelength.Circular, 8, 1, 1)
	mk := func() fault.Injector {
		m, err := fault.NewMarkov(fault.MarkovConfig{
			N: 6, K: 8, Seed: 5,
			ConverterFail: 0.05, ConverterRepair: 0.2,
			ChannelDark: 0.01, ChannelRestore: 0.2,
			PortDown: 0.005, PortUp: 0.3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	seq := faultRun(t, Config{N: 6, Conv: conv, Seed: 21, Faults: mk()}, 0.9, 150)
	dist := faultRun(t, Config{N: 6, Conv: conv, Seed: 21, Faults: mk(), Distributed: true}, 0.9, 150)
	requireStatsEqual(t, "faulted", seq, dist)
	if seq.Fault.LostGrants.Value() != dist.Fault.LostGrants.Value() ||
		seq.Fault.KilledConnections.Value() != dist.Fault.KilledConnections.Value() ||
		seq.Fault.DegradedSlots.Value() != dist.Fault.DegradedSlots.Value() {
		t.Fatalf("fault stats diverged: seq %+v vs dist %+v", seq.Fault, dist.Fault)
	}
	if seq.Fault.DegradedSlots.Value() == 0 {
		t.Fatal("markov injector produced no degradation; test is vacuous")
	}
}

// TestPortDownStopsGrants: with one port permanently down from slot 0, the
// switch keeps running, and traffic to that port is wholly dropped.
func TestPortDownStopsGrants(t *testing.T) {
	conv := wavelength.MustNew(wavelength.Circular, 4, 1, 1)
	inj, err := fault.NewScript(2, 4, []fault.Event{{Slot: 0, Port: 1, Kind: fault.PortDown}})
	if err != nil {
		t.Fatal(err)
	}
	st := faultRun(t, Config{N: 2, Conv: conv, Seed: 13, Faults: inj}, 1.0, 100)
	if st.Granted.Value() == 0 {
		t.Fatal("healthy port granted nothing")
	}
	if st.Fault.DegradedFraction(st.Slots) != 1.0 {
		t.Fatalf("degraded fraction %v, want 1.0", st.Fault.DegradedFraction(st.Slots))
	}
	if st.Fault.DarkChannelSlots.Value() != int64(4*st.Slots) {
		t.Fatalf("dark channel-slots %d, want %d", st.Fault.DarkChannelSlots.Value(), 4*st.Slots)
	}
	// Half the switch's channels are dark every slot.
	if got, want := st.Fault.MeanHealthyChannels(), 4.0; got != want {
		t.Fatalf("mean healthy channels %v, want %v", got, want)
	}
}

// TestFaultedRunAccounting: under sustained converter failures the packet
// partition invariant still holds and the degraded-mode statistics are
// internally consistent.
func TestFaultedRunAccounting(t *testing.T) {
	conv := wavelength.MustNew(wavelength.Circular, 8, 2, 2)
	m, err := fault.NewMarkov(fault.MarkovConfig{
		N: 4, K: 8, Seed: 17, ConverterFail: 0.1, ConverterRepair: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := faultRun(t, Config{N: 4, Conv: conv, Seed: 29, Faults: m}, 1.0, 200)
	if got := st.Granted.Value() + st.InputBlocked.Value() + st.OutputDropped.Value(); got != st.Offered.Value() {
		t.Fatalf("packet partition broken: %d granted + blocked + dropped vs %d offered", got, st.Offered.Value())
	}
	f := st.Fault
	if f.DegradedChannelSlots.Value() != f.ConverterFailedChannelSlots.Value()+f.DarkChannelSlots.Value() {
		t.Fatalf("degraded breakdown inconsistent: %d != %d + %d",
			f.DegradedChannelSlots.Value(), f.ConverterFailedChannelSlots.Value(), f.DarkChannelSlots.Value())
	}
	if f.DarkChannelSlots.Value() != 0 {
		t.Fatalf("dark channels injected by converter-only config: %d", f.DarkChannelSlots.Value())
	}
	if f.DegradedSlots.Value() == 0 || f.ConverterFailedChannelSlots.Value() == 0 {
		t.Fatal("no degradation injected; test is vacuous")
	}
	if int64(f.HealthyChannels.Count()) != int64(st.Slots) {
		t.Fatalf("healthy-channel histogram has %d samples, want one per slot (%d)",
			f.HealthyChannels.Count(), st.Slots)
	}
	// Connections never start on a converter-failed channel except at
	// their own wavelength, and dark channels are excluded entirely, so
	// with converter-only faults nothing should ever be killed by a
	// failure arriving mid-hold — unless the chain flips while held, which
	// this config makes likely. Just require the counter to be sane.
	if f.KilledConnections.Value() < 0 || f.LostGrants.Value() < 0 {
		t.Fatal("negative fault counters")
	}
}
