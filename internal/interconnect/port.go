package interconnect

import (
	"fmt"
	"sync/atomic"

	"wdmsched/internal/core"
	"wdmsched/internal/fabric"
	"wdmsched/internal/metrics"
	"wdmsched/internal/telemetry"
	"wdmsched/internal/wavelength"
)

// portRequest is one request pending at an output port in the current
// slot: either a new arrival or, in disturb mode, a held connection being
// rescheduled.
type portRequest struct {
	fiber    int
	duration int // for held requests: remaining slots including this one
	held     bool
}

// portGrant is one connection switched by a port this slot.
type portGrant struct {
	fiber    int
	wave     int
	channel  int
	duration int
	held     bool // re-placement of an existing connection
}

// outputPort is the per-output-fiber scheduling pipeline: request register
// → request vector → scheduler (the paper's distributed algorithm) → fair
// selection → channel hold bookkeeping. Each port is independent of every
// other port (the paper's Section I partition argument), which is what
// makes the distributed mode race-free.
type outputPort struct {
	fiberID int
	k       int
	conv    wavelength.Conversion
	sched   core.Scheduler
	sel     fabric.Selector
	disturb bool

	// Decision tracing (Config.Trace): nil disables tracing entirely —
	// every emission site is guarded by a nil check so the disabled path
	// stays allocation-free and branch-predictable. slot is the current
	// slot number, written by the switch before the per-port fan-out.
	tracer *telemetry.DecisionTracer
	slot   int64

	// QoS mode (classes > 1): strict-priority scheduling of per-class
	// request vectors (paper Section VI future work). Mutually exclusive
	// with disturb mode.
	classes   int
	prio      *core.PriorityScheduler
	classReqs [][][]portRequest // [class][wavelength]
	counts    [][]int           // [class][wavelength]
	results   []*core.Result    // per class
	clsOff    []int64           // atomic
	clsGrant  []int64           // atomic

	reg      *fabric.RequestRegister
	count    []int
	occupied []bool
	res      *core.Result
	anyReqs  bool // any requests this slot (arrivals or disturb requeues)
	// waveMark flags the wavelengths holding requests this slot, so the
	// commit expansion and the next prepare's request-list reset touch
	// only the active wavelengths instead of sweeping all k.
	waveMark *fabric.BitVector

	// Fault injection (Config.Faults): mask is this slot's channel-state
	// view, written by the switch before the per-port fan-out (nil when
	// the port is fully healthy, which keeps the exact maskless path).
	// shadow holds the healthy-graph matching of the same instance, so
	// lost grants are attributable to the faults rather than to load.
	mask        core.ChannelMask
	shadow      *core.Result
	shadows     []*core.Result // per class, QoS mode
	faultLost   int64          // atomic
	faultKilled int64          // atomic

	// holdRemaining[b] > 0 means output channel b is transmitting and
	// will stay busy for that many more slots (including the current
	// one once set). heldSource[b] records who is transmitting.
	holdRemaining []int
	heldSource    []portGrant
	// holdsLive is true while any holdRemaining entry is positive, and
	// occDirty while any occupied entry is true: together they let an
	// idle slot skip the O(k) occupancy and hold-aging sweeps entirely.
	holdsLive bool
	occDirty  bool

	// Per-slot scratch.
	reqs        [][]portRequest // per wavelength
	fibers      []int           // selector input buffer
	winners     []int           // selector output buffer
	grants      []portGrant     // this slot's switched connections
	preemptees  []portGrant     // held connections displaced this slot (disturb mode)
	fiberGrants []int64         // per-input grant tallies, flushed once per slot

	// Counting-sorted channel index of the slot's Result: the channels
	// granted to wavelength w are chanBuf[chanOff[w]:chanOff[w+1]], in
	// ascending channel order. Built in one O(k) pass by buildChannelIndex,
	// replacing the former O(k) ByOutput scan per granted wavelength
	// (O(k²) per slot, which dominated commit at large k).
	chanBuf []int
	chanOff []int // len k+1
	chanPos []int // fill cursor per wavelength, doubles as a consistency check

	// Per-port statistics, merged (moved) into the run totals by the
	// switch after the run; keeping them port-local avoids cross-
	// goroutine contention in distributed mode. Each field has a single
	// writer (the port's goroutine) but is written with atomic adds so
	// live telemetry collectors can read it mid-run.
	offered         int64   // atomic
	granted         int64   // atomic
	outputDropped   int64   // atomic
	preempted       int64   // atomic
	busyslots       int64   // atomic
	busyPerChannel  []int64 // atomic
	perInputGranted []int64 // atomic
	matchSizes      *metrics.Histogram
}

func newOutputPort(fiberID, n, k int, conv wavelength.Conversion, sched core.Scheduler, sel fabric.Selector, disturb bool) *outputPort {
	p := &outputPort{
		fiberID:         fiberID,
		k:               k,
		conv:            conv,
		sched:           sched,
		sel:             sel,
		disturb:         disturb,
		classes:         1,
		reg:             fabric.NewRequestRegister(n, k),
		count:           make([]int, k),
		occupied:        make([]bool, k),
		res:             core.NewResult(k),
		shadow:          core.NewResult(k),
		waveMark:        fabric.NewBitVector(k),
		holdRemaining:   make([]int, k),
		heldSource:      make([]portGrant, k),
		reqs:            make([][]portRequest, k),
		chanBuf:         make([]int, k),
		chanOff:         make([]int, k+1),
		chanPos:         make([]int, k),
		busyPerChannel:  make([]int64, k),
		perInputGranted: make([]int64, n),
		fiberGrants:     make([]int64, n),
		matchSizes:      metrics.NewHistogram(k),
	}
	return p
}

// enableClasses switches the port to strict-priority QoS mode.
func (p *outputPort) enableClasses(classes int, prio *core.PriorityScheduler) {
	p.classes = classes
	p.prio = prio
	p.classReqs = make([][][]portRequest, classes)
	p.counts = make([][]int, classes)
	p.results = make([]*core.Result, classes)
	p.shadows = make([]*core.Result, classes)
	for c := 0; c < classes; c++ {
		p.classReqs[c] = make([][]portRequest, p.k)
		p.counts[c] = make([]int, p.k)
		p.results[c] = core.NewResult(p.k)
		p.shadows[c] = core.NewResult(p.k)
	}
	p.clsOff = make([]int64, classes)
	p.clsGrant = make([]int64, classes)
}

// emit records one decision event on the port's lane. Callers must guard
// with p.tracer != nil; the guard (rather than a nil check here) keeps the
// disabled fast path free of argument marshalling.
func (p *outputPort) emit(kind telemetry.EventKind, reason telemetry.RejectReason, fiber, wave, channel int, value int64) {
	p.tracer.Emit(p.fiberID, telemetry.Event{
		Slot: p.slot, Lane: int32(p.fiberID), Kind: kind, Reason: reason,
		Fiber: int32(fiber), Wave: int32(wave), Channel: int32(channel), Value: value,
	})
}

// classifyReject explains why wavelength w's requests were denied when the
// matching granted them nothing: every window channel occupied, the free
// ones fault-masked, or usable channels lost to competing requests. O(k)
// walk over the conversion window; called only with tracing enabled.
func (p *outputPort) classifyReject(w int) telemetry.RejectReason {
	anyFree, anyUsable := false, false
	for b := 0; b < p.k; b++ {
		if !p.conv.CanConvert(wavelength.Wavelength(w), wavelength.Wavelength(b)) {
			continue
		}
		if p.occupied[b] {
			continue
		}
		anyFree = true
		if p.mask == nil || p.mask[b] == core.Healthy ||
			(p.mask[b] == core.ConverterFailed && b == w) {
			anyUsable = true
			break
		}
	}
	switch {
	case !anyFree:
		return telemetry.ReasonWindowOccupied
	case !anyUsable:
		return telemetry.ReasonFaultMasked
	default:
		return telemetry.ReasonLostMatching
	}
}

// killFaultedHolds aborts in-flight connections whose channel can no longer
// carry them under the current fault mask: a dark channel transmits nothing,
// and a converter-failed channel sustains only a connection already at the
// channel's own wavelength. Killed connections land in preemptees so the
// switch releases their input channels; they are not re-requested (the
// transmission is physically gone, unlike a disturb-mode reshuffle).
func (p *outputPort) killFaultedHolds() {
	if p.mask == nil {
		return
	}
	for b := 0; b < p.k; b++ {
		if p.holdRemaining[b] == 0 {
			continue
		}
		st := p.mask[b]
		if st == core.Dark || (st == core.ConverterFailed && p.heldSource[b].wave != b) {
			src := p.heldSource[b]
			atomic.AddInt64(&p.faultKilled, 1)
			p.preemptees = append(p.preemptees, portGrant{fiber: src.fiber, wave: src.wave})
			p.holdRemaining[b] = 0
			if p.tracer != nil {
				p.emit(telemetry.EvFaultKill, telemetry.ReasonNone, src.fiber, src.wave, b, 0)
			}
		}
	}
}

// schedule runs the port's scheduler over the current request vector —
// through the masked path when a fault mask is active, in which case the
// healthy-graph matching of the same instance is also computed (into
// shadow) to attribute the difference to the faults.
func (p *outputPort) schedule() {
	if p.mask == nil {
		p.sched.Schedule(p.count, p.occupied, p.res)
	} else {
		p.sched.ScheduleMasked(p.count, p.occupied, p.mask, p.res)
		p.sched.Schedule(p.count, p.occupied, p.shadow)
		if lost := p.shadow.Size - p.res.Size; lost > 0 {
			atomic.AddInt64(&p.faultLost, int64(lost))
		}
	}
	if p.tracer != nil && p.res.BreakChannel != core.Unassigned {
		p.emit(telemetry.EvBreakEdge, telemetry.ReasonNone, -1, -1, p.res.BreakChannel, 0)
	}
}

// buildChannelIndex counting-sorts res.ByOutput into the per-wavelength
// channel index (chanBuf/chanOff): offsets come from the prefix sums of
// res.Granted, then one ascending-b pass drops each granted channel into
// its wavelength's bucket, preserving ascending channel order within a
// wavelength — the same order the per-wavelength ByOutput scans produced.
func (p *outputPort) buildChannelIndex(res *core.Result) {
	off := 0
	for w := 0; w < p.k; w++ {
		p.chanOff[w] = off
		p.chanPos[w] = off
		off += res.Granted[w]
	}
	p.chanOff[p.k] = off
	for b := 0; b < p.k; b++ {
		w := res.ByOutput[b]
		if w == core.Unassigned {
			continue
		}
		if p.chanPos[w] == p.chanOff[w+1] {
			panic(fmt.Sprintf("interconnect: port %d wavelength %d: more channels than %d grants",
				p.fiberID, w, res.Granted[w]))
		}
		p.chanBuf[p.chanPos[w]] = b
		p.chanPos[w]++
	}
}

// grantedChannels returns wavelength w's granted channels from the index,
// panicking (like the old scan did) if the Result's ByOutput and Granted
// disagree.
func (p *outputPort) grantedChannels(w, g int) []int {
	chs := p.chanBuf[p.chanOff[w]:p.chanPos[w]]
	if len(chs) != g {
		panic(fmt.Sprintf("interconnect: port %d wavelength %d: %d channels for %d grants",
			p.fiberID, w, len(chs), g))
	}
	return chs
}

// runSlot processes the port's share of one slot: arrivals is the list of
// packets destined to this output fiber (already input-admission-filtered
// by the switch). It returns the slot's switched connections (valid until
// the next runSlot call).
func (p *outputPort) runSlot(arrivals []arrival) []portGrant {
	if p.classes > 1 {
		return p.runSlotClasses(arrivals)
	}
	return p.runSlotSingle(arrivals)
}

// runSlotClasses is the QoS path: per-class request vectors scheduled by
// strict priority, each class expanded through the fair selector.
func (p *outputPort) runSlotClasses(arrivals []arrival) []portGrant {
	p.grants = p.grants[:0]
	p.preemptees = p.preemptees[:0]
	p.killFaultedHolds()
	for c := 0; c < p.classes; c++ {
		for w := 0; w < p.k; w++ {
			p.classReqs[c][w] = p.classReqs[c][w][:0]
			p.counts[c][w] = 0
		}
	}
	for b := 0; b < p.k; b++ {
		p.occupied[b] = p.holdRemaining[b] > 0
	}
	atomic.AddInt64(&p.offered, int64(len(arrivals)))
	for _, a := range arrivals {
		c := a.class
		if c < 0 || c >= p.classes {
			c = p.classes - 1 // clamp unknown classes to lowest priority
		}
		atomic.AddInt64(&p.clsOff[c], 1)
		p.classReqs[c][a.wave] = append(p.classReqs[c][a.wave], portRequest{fiber: a.fiber, duration: a.duration})
		p.counts[c][a.wave]++
	}
	if p.mask == nil {
		if err := p.prio.ScheduleClasses(p.counts, p.occupied, p.results); err != nil {
			panic(fmt.Sprintf("interconnect: port %d: %v", p.fiberID, err))
		}
	} else {
		if err := p.prio.ScheduleClassesMasked(p.counts, p.occupied, p.mask, p.results); err != nil {
			panic(fmt.Sprintf("interconnect: port %d: %v", p.fiberID, err))
		}
		if err := p.prio.ScheduleClasses(p.counts, p.occupied, p.shadows); err != nil {
			panic(fmt.Sprintf("interconnect: port %d: %v", p.fiberID, err))
		}
		if lost := core.TotalGranted(p.shadows) - core.TotalGranted(p.results); lost > 0 {
			atomic.AddInt64(&p.faultLost, int64(lost))
		}
	}
	slotSize := 0
	for c := 0; c < p.classes; c++ {
		res := p.results[c]
		slotSize += res.Size
		if res.Size > 0 {
			p.buildChannelIndex(res)
		}
		for w := 0; w < p.k; w++ {
			g := res.Granted[w]
			reqs := p.classReqs[c][w]
			if g == 0 {
				atomic.AddInt64(&p.outputDropped, int64(len(reqs)))
				if p.tracer != nil && len(reqs) > 0 {
					reason := p.classifyReject(w)
					for _, r := range reqs {
						p.emit(telemetry.EvReject, reason, r.fiber, w, -1, int64(c))
					}
				}
				continue
			}
			channels := p.grantedChannels(w, g)
			p.fibers = p.fibers[:0]
			for _, r := range reqs {
				p.fibers = append(p.fibers, r.fiber)
			}
			p.winners = p.sel.Pick(w, p.fibers, g, p.winners[:0])
			for ci, f := range p.winners {
				dur := 0
				for _, r := range reqs {
					if r.fiber == f {
						dur = r.duration
						break
					}
				}
				p.grants = append(p.grants, portGrant{
					fiber: f, wave: w, channel: channels[ci], duration: dur,
				})
				atomic.AddInt64(&p.granted, 1)
				atomic.AddInt64(&p.clsGrant[c], 1)
				atomic.AddInt64(&p.perInputGranted[f], 1)
				if p.tracer != nil {
					p.emit(telemetry.EvGrant, telemetry.ReasonNone, f, w, channels[ci], int64(c))
				}
			}
			atomic.AddInt64(&p.outputDropped, int64(len(reqs)-g))
			if p.tracer != nil && len(reqs) > g {
				// Requests that lost contention despite grants on their
				// wavelength: everyone not among the winners.
				for _, r := range reqs {
					won := false
					for _, f := range p.winners {
						if f == r.fiber {
							won = true
							break
						}
					}
					if !won {
						p.emit(telemetry.EvReject, telemetry.ReasonLostMatching, r.fiber, w, -1, int64(c))
					}
				}
			}
		}
	}
	p.matchSizes.Observe(slotSize)
	for _, g := range p.grants {
		p.holdRemaining[g.channel] = g.duration
		p.heldSource[g.channel] = g
	}
	if len(p.grants) > 0 {
		p.holdsLive = true
	}
	p.ageHolds()
	return p.grants
}

func (p *outputPort) runSlotSingle(arrivals []arrival) []portGrant {
	p.prepare(arrivals)
	if p.anyReqs {
		p.schedule()
	} else {
		// Empty instance: any scheduler returns the empty matching, so
		// skip the call and pin the two Result fields commit reads.
		p.res.Size = 0
		p.res.BreakChannel = core.Unassigned
	}
	return p.commit()
}

// prepare runs the pre-scheduling half of the slot pipeline: scratch
// reset, fault-kill sweep, occupancy derivation and request-vector
// construction. After prepare, p.count, p.occupied and p.mask fully
// describe the port's scheduling instance for this slot — which is what
// the cluster controller ships to a remote node instead of calling
// p.schedule locally.
func (p *outputPort) prepare(arrivals []arrival) {
	p.reg.Reset()
	// Only wavelengths marked active last slot can hold stale requests
	// or a stale count entry.
	for w := p.waveMark.NextSet(0); w >= 0; w = p.waveMark.NextSet(w + 1) {
		p.reqs[w] = p.reqs[w][:0]
		p.count[w] = 0
	}
	p.waveMark.Reset()
	p.grants = p.grants[:0]
	p.preemptees = p.preemptees[:0]
	p.killFaultedHolds()
	p.anyReqs = len(arrivals) > 0

	// Occupancy from connections still holding their channels. In
	// disturb mode held connections are rescheduled from scratch
	// alongside new arrivals (Section V: "the existing connections can
	// be disturbed, i.e., be reassigned to a different output channel").
	// With no live holds and a clean occupancy vector the sweep is a
	// no-op and is skipped outright.
	if p.holdsLive || p.occDirty {
		dirty := false
		for b := 0; b < p.k; b++ {
			if p.holdRemaining[b] > 0 && p.disturb {
				src := p.heldSource[b]
				p.reqs[src.wave] = append(p.reqs[src.wave], portRequest{
					fiber:    src.fiber,
					duration: p.holdRemaining[b],
					held:     true,
				})
				p.waveMark.Set(src.wave)
				p.count[src.wave]++
				p.holdRemaining[b] = 0
				p.anyReqs = true
			}
			occ := p.holdRemaining[b] > 0
			p.occupied[b] = occ
			dirty = dirty || occ
		}
		p.holdsLive = dirty
		p.occDirty = dirty
	}

	// New arrivals populate the request register (the paper's Nk-bit
	// vector) and the per-wavelength request lists.
	atomic.AddInt64(&p.offered, int64(len(arrivals)))
	for _, a := range arrivals {
		p.reg.Mark(a.fiber, a.wave)
		p.reqs[a.wave] = append(p.reqs[a.wave], portRequest{fiber: a.fiber, duration: a.duration})
		p.waveMark.Set(a.wave)
		// Request vector, maintained incrementally: one register mark per
		// arrival plus (above) one per disturb-mode requeue — the same
		// totals reg.CountVector would derive, without the O(k) sweep.
		p.count[a.wave]++
	}
}

// afterRemote performs the accounting that schedule() would have done when
// the decision in p.res (and, under a fault mask, the healthy-graph
// matching in p.shadow) was computed off-port — by a cluster node or by
// the controller's local fallback scheduler.
func (p *outputPort) afterRemote() {
	if p.mask != nil {
		if lost := p.shadow.Size - p.res.Size; lost > 0 {
			atomic.AddInt64(&p.faultLost, int64(lost))
		}
	}
	if p.tracer != nil && p.res.BreakChannel != core.Unassigned {
		p.emit(telemetry.EvBreakEdge, telemetry.ReasonNone, -1, -1, p.res.BreakChannel, 0)
	}
}

// commit runs the post-scheduling half of the slot pipeline: expanding the
// per-wavelength grant counts in p.res into concrete winners through the
// fair selector, then the channel-hold bookkeeping. It returns the slot's
// switched connections (valid until the next slot).
func (p *outputPort) commit() []portGrant {
	p.matchSizes.Observe(p.res.Size)
	if p.res.Size == 0 {
		// Nothing was granted: the channel index would be empty, and with
		// no requests either there is nothing to reject or preempt — only
		// the hold aging at the bottom still applies.
		if !p.anyReqs {
			p.ageHolds()
			return p.grants
		}
	} else {
		p.buildChannelIndex(p.res)
	}
	var granted, dropped, preempted int64

	// Expand per-wavelength grant counts into concrete winners. Held
	// connections are served first (keeping an in-flight connection beats
	// admitting a new one); the fair selector breaks ties among new
	// requests. Only the active wavelengths can hold requests or grants,
	// so the sweep follows waveMark instead of scanning all k.
	for w := p.waveMark.NextSet(0); w >= 0; w = p.waveMark.NextSet(w + 1) {
		g := p.res.Granted[w]
		if g == 0 {
			var reason telemetry.RejectReason
			if p.tracer != nil && len(p.reqs[w]) > 0 {
				reason = p.classifyReject(w)
			}
			for _, r := range p.reqs[w] {
				if r.held {
					preempted++
					p.preemptees = append(p.preemptees, portGrant{fiber: r.fiber, wave: w})
					if p.tracer != nil {
						p.emit(telemetry.EvPreempt, telemetry.ReasonNone, r.fiber, w, -1, 0)
					}
				} else {
					dropped++
					if p.tracer != nil {
						p.emit(telemetry.EvReject, reason, r.fiber, w, -1, 0)
					}
				}
			}
			continue
		}
		channels := p.grantedChannels(w, g)
		ci := 0
		remaining := g
		// Held-first placement.
		if p.disturb {
			for _, r := range p.reqs[w] {
				if !r.held {
					continue
				}
				if remaining == 0 {
					preempted++
					p.preemptees = append(p.preemptees, portGrant{fiber: r.fiber, wave: w})
					if p.tracer != nil {
						p.emit(telemetry.EvPreempt, telemetry.ReasonNone, r.fiber, w, -1, 0)
					}
					continue
				}
				p.grants = append(p.grants, portGrant{
					fiber: r.fiber, wave: w, channel: channels[ci],
					duration: r.duration, held: true,
				})
				if p.tracer != nil {
					p.emit(telemetry.EvRegrant, telemetry.ReasonNone, r.fiber, w, channels[ci], 0)
				}
				ci++
				remaining--
			}
		}
		// Fair selection among new requests for the remaining channels.
		if remaining > 0 {
			p.fibers = p.fibers[:0]
			for _, r := range p.reqs[w] {
				if !r.held {
					p.fibers = append(p.fibers, r.fiber)
				}
			}
			p.winners = p.sel.Pick(w, p.fibers, remaining, p.winners[:0])
			for _, f := range p.winners {
				dur := 0
				for _, r := range p.reqs[w] {
					if !r.held && r.fiber == f {
						dur = r.duration
						break
					}
				}
				p.grants = append(p.grants, portGrant{
					fiber: f, wave: w, channel: channels[ci],
					duration: dur,
				})
				if p.tracer != nil {
					p.emit(telemetry.EvGrant, telemetry.ReasonNone, f, w, channels[ci], 0)
				}
				ci++
				granted++
				p.fiberGrants[f]++
			}
		}
		// New requests that lost contention.
		newReqs := 0
		for _, r := range p.reqs[w] {
			if !r.held {
				newReqs++
			}
		}
		newGranted := g
		if p.disturb {
			newGranted = 0
			for _, pg := range p.grants {
				if pg.wave == w && !pg.held {
					newGranted++
				}
			}
		}
		dropped += int64(newReqs - newGranted)
		if p.tracer != nil && newReqs > newGranted {
			// Identify the losers: new requests without a grant this slot
			// on this wavelength (grant list scan; tracer-only cost).
			for _, r := range p.reqs[w] {
				if r.held {
					continue
				}
				won := false
				for _, pg := range p.grants {
					if pg.wave == w && !pg.held && pg.fiber == r.fiber {
						won = true
						break
					}
				}
				if !won {
					p.emit(telemetry.EvReject, telemetry.ReasonLostMatching, r.fiber, w, -1, 0)
				}
			}
		}
	}

	// Flush the slot's batched statistics in one atomic add per counter
	// (per-input tallies once per touched fiber) — the totals are what
	// the per-grant adds would have accumulated.
	if granted != 0 {
		atomic.AddInt64(&p.granted, granted)
	}
	if dropped != 0 {
		atomic.AddInt64(&p.outputDropped, dropped)
	}
	if preempted != 0 {
		atomic.AddInt64(&p.preempted, preempted)
	}
	for f, c := range p.fiberGrants {
		if c != 0 {
			atomic.AddInt64(&p.perInputGranted[f], c)
			p.fiberGrants[f] = 0
		}
	}

	// Hold bookkeeping: every switched connection occupies its channel
	// for its (remaining) duration starting this slot.
	for _, g := range p.grants {
		p.holdRemaining[g.channel] = g.duration
		p.heldSource[g.channel] = g
	}
	if len(p.grants) > 0 {
		p.holdsLive = true
	}
	p.ageHolds()
	return p.grants
}

// ageHolds tallies the channels transmitting this slot and ages every
// live hold. A port with no live holds skips the sweep, and holdsLive is
// recomputed from what survives the aging.
func (p *outputPort) ageHolds() {
	if !p.holdsLive {
		return
	}
	busy := int64(0)
	live := false
	for b := 0; b < p.k; b++ {
		if p.holdRemaining[b] > 0 {
			busy++
			atomic.AddInt64(&p.busyPerChannel[b], 1)
			p.holdRemaining[b]--
			live = live || p.holdRemaining[b] > 0
		}
	}
	if busy != 0 {
		atomic.AddInt64(&p.busyslots, busy)
	}
	p.holdsLive = live
}

// mergeInto moves the port's local statistics into the run totals: each
// counter is atomically swapped to zero as it is folded in, so the live
// telemetry view (run totals + Σ port locals) stays correct before,
// during, and after the merge without a finalized flag.
func (p *outputPort) mergeInto(s *Stats) {
	for c := 0; c < len(p.clsOff); c++ {
		atomic.AddInt64(&s.PerClassOffered[c], atomic.SwapInt64(&p.clsOff[c], 0))
		atomic.AddInt64(&s.PerClassGranted[c], atomic.SwapInt64(&p.clsGrant[c], 0))
	}
	s.Offered.Add(atomic.SwapInt64(&p.offered, 0))
	s.Granted.Add(atomic.SwapInt64(&p.granted, 0))
	s.OutputDropped.Add(atomic.SwapInt64(&p.outputDropped, 0))
	s.Preempted.Add(atomic.SwapInt64(&p.preempted, 0))
	s.BusyChannelSlots.Add(atomic.SwapInt64(&p.busyslots, 0))
	for b := range p.busyPerChannel {
		atomic.AddInt64(&s.PerChannelBusy[b], atomic.SwapInt64(&p.busyPerChannel[b], 0))
	}
	for f := range p.perInputGranted {
		atomic.AddInt64(&s.PerInputGranted[f], atomic.SwapInt64(&p.perInputGranted[f], 0))
	}
	snap := p.matchSizes.Snapshot()
	p.matchSizes.Reset()
	for v, c := range snap.Buckets {
		for i := int64(0); i < c; i++ {
			s.MatchSizes.Observe(v)
		}
	}
	if s.Fault != nil {
		s.Fault.LostGrants.Add(atomic.SwapInt64(&p.faultLost, 0))
		s.Fault.KilledConnections.Add(atomic.SwapInt64(&p.faultKilled, 0))
	}
}
