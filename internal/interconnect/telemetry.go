package interconnect

import (
	"strconv"
	"sync/atomic"
	"time"

	"wdmsched/internal/metrics"
	"wdmsched/internal/telemetry"
)

// registerTelemetry wires every run statistic into the registry under
// wdm_* names. Port-local counters are accumulated locally during the run
// and moved into the Stats totals at Finalize, so each traffic collector
// reads totals + Σ port locals — a formula that stays correct before,
// during, and after the merge because mergeInto swaps the locals to zero
// as it folds them in.
func (s *Switch) registerTelemetry(r *telemetry.Registry) {
	st := s.stats
	es := st.Engine

	// live sums a switch-level base counter with the port-local field
	// selected by sel.
	live := func(base *metrics.Counter, sel func(*outputPort) *int64) func() int64 {
		return func() int64 {
			v := base.Value()
			for _, p := range s.ports {
				v += atomic.LoadInt64(sel(p))
			}
			return v
		}
	}
	offered := live(&st.Offered, func(p *outputPort) *int64 { return &p.offered })
	granted := live(&st.Granted, func(p *outputPort) *int64 { return &p.granted })
	busy := live(&st.BusyChannelSlots, func(p *outputPort) *int64 { return &p.busyslots })

	r.CounterFunc("wdm_slots_total", "Simulated time slots.", nil, s.slotsDone.Load)
	r.CounterFunc("wdm_offered_packets_total", "Packets presented to the interconnect.", nil, offered)
	r.CounterFunc("wdm_granted_packets_total", "New packets that won an output channel.", nil, granted)
	r.Counter("wdm_input_blocked_total", "Packets blocked at a held input channel.", nil, &st.InputBlocked)
	r.CounterFunc("wdm_output_dropped_total", "Packets that lost output contention.", nil,
		live(&st.OutputDropped, func(p *outputPort) *int64 { return &p.outputDropped }))
	r.CounterFunc("wdm_preempted_total", "Held connections displaced by disturb-mode rescheduling.", nil,
		live(&st.Preempted, func(p *outputPort) *int64 { return &p.preempted }))
	r.CounterFunc("wdm_busy_channel_slots_total", "Output (channel, slot) pairs spent transmitting.", nil, busy)

	nk := float64(s.cfg.N) * float64(s.k)
	r.GaugeFunc("wdm_loss_rate", "Fraction of offered packets not granted.", nil, func() float64 {
		o := offered()
		if o == 0 {
			return 0
		}
		return 1 - float64(granted())/float64(o)
	})
	r.GaugeFunc("wdm_throughput", "Granted packets per output channel-slot.", nil, func() float64 {
		slots := s.slotsDone.Load()
		if slots == 0 {
			return 0
		}
		return float64(granted()) / (nk * float64(slots))
	})
	r.GaugeFunc("wdm_utilization", "Busy fraction of output channel-slots.", nil, func() float64 {
		slots := s.slotsDone.Load()
		if slots == 0 {
			return 0
		}
		return float64(busy()) / (nk * float64(slots))
	})

	// Per-input grants (and the Jain fairness index over them).
	inputGranted := func(i int) int64 {
		v := atomic.LoadInt64(&st.PerInputGranted[i])
		for _, p := range s.ports {
			v += atomic.LoadInt64(&p.perInputGranted[i])
		}
		return v
	}
	for i := 0; i < s.cfg.N; i++ {
		i := i
		r.CounterFunc("wdm_input_granted_total", "Grants per input fiber.",
			[]telemetry.Label{{Key: "input", Value: strconv.Itoa(i)}},
			func() int64 { return inputGranted(i) })
	}
	r.GaugeFunc("wdm_fairness_jain", "Jain fairness index over per-input grants.", nil, func() float64 {
		shares := make([]float64, s.cfg.N)
		for i := range shares {
			shares[i] = float64(inputGranted(i))
		}
		return metrics.Jain(shares)
	})

	for b := 0; b < s.k; b++ {
		b := b
		r.CounterFunc("wdm_channel_busy_slots_total", "Busy slots per output wavelength channel, summed over fibers.",
			[]telemetry.Label{{Key: "channel", Value: strconv.Itoa(b)}},
			func() int64 {
				v := atomic.LoadInt64(&st.PerChannelBusy[b])
				for _, p := range s.ports {
					v += atomic.LoadInt64(&p.busyPerChannel[b])
				}
				return v
			})
	}

	for c := range st.PerClassOffered {
		c := c
		lbl := []telemetry.Label{{Key: "class", Value: strconv.Itoa(c)}}
		r.CounterFunc("wdm_class_offered_total", "Offered packets per QoS class.", lbl, func() int64 {
			v := atomic.LoadInt64(&st.PerClassOffered[c])
			for _, p := range s.ports {
				v += atomic.LoadInt64(&p.clsOff[c])
			}
			return v
		})
		r.CounterFunc("wdm_class_granted_total", "Granted packets per QoS class.", lbl, func() int64 {
			v := atomic.LoadInt64(&st.PerClassGranted[c])
			for _, p := range s.ports {
				v += atomic.LoadInt64(&p.clsGrant[c])
			}
			return v
		})
	}

	r.HistogramFunc("wdm_match_size", "Per-fiber per-slot matching sizes.", nil,
		func() metrics.HistogramSnapshot {
			snap := st.MatchSizes.Snapshot()
			for _, p := range s.ports {
				snap.Merge(p.matchSizes.Snapshot())
			}
			return snap
		})

	// Engine run-time metrics.
	r.GaugeFunc("wdm_engine_distributed", "1 when the worker-pool engine runs the slots, 0 sequential.", nil,
		func() float64 {
			if es.Distributed {
				return 1
			}
			return 0
		})
	r.DurationHistogram("wdm_engine_slot_latency_seconds",
		"Per-slot scheduling-phase wall time.", nil, es.SlotLatency)
	for o := 0; o < s.cfg.N; o++ {
		o := o
		r.GaugeFunc("wdm_engine_port_busy_seconds", "Cumulative scheduling time per output port.",
			[]telemetry.Label{{Key: "port", Value: strconv.Itoa(o)}},
			func() float64 { return es.busy(o).Seconds() })
	}
	r.Gauge("wdm_engine_allocs_per_slot", "Sampled process-wide heap allocations per slot.", nil, &es.AllocsPerSlot)
	r.CounterFunc("wdm_engine_mem_samples_total", "runtime.ReadMemStats samples taken.", nil,
		func() int64 { return atomic.LoadInt64(&es.MemSamples) })

	// Fault exposure, when injection is enabled.
	if fs := st.Fault; fs != nil {
		r.Histogram("wdm_fault_healthy_channels", "Per-slot distribution of healthy output channels.", nil,
			fs.HealthyChannels)
		r.Counter("wdm_fault_degraded_slots_total", "Slots with at least one non-healthy channel.", nil,
			&fs.DegradedSlots)
		r.Counter("wdm_fault_degraded_channel_slots_total", "Channel-slots in any non-healthy state.", nil,
			&fs.DegradedChannelSlots)
		r.Counter("wdm_fault_converter_failed_channel_slots_total", "Channel-slots with a failed converter.", nil,
			&fs.ConverterFailedChannelSlots)
		r.Counter("wdm_fault_dark_channel_slots_total", "Channel-slots spent dark.", nil,
			&fs.DarkChannelSlots)
		r.CounterFunc("wdm_fault_lost_grants_total", "Grants the fault masks cost vs the healthy matching.", nil,
			live(&fs.LostGrants, func(p *outputPort) *int64 { return &p.faultLost }))
		r.CounterFunc("wdm_fault_killed_connections_total", "In-flight connections aborted by faults.", nil,
			live(&fs.KilledConnections, func(p *outputPort) *int64 { return &p.faultKilled }))
	}

	// Decision tracer throughput, when tracing is enabled.
	if t := s.cfg.Trace; t != nil {
		r.CounterFunc("wdm_trace_events_emitted_total", "Decision events emitted.", nil, t.Emitted)
		r.CounterFunc("wdm_trace_events_dropped_total", "Decision events overwritten by ring wraparound.", nil, t.Dropped)
	}

	// Flight-recorder health, when a recorder is attached.
	if s.cfg.Recorder != nil {
		s.cfg.Recorder.RegisterTelemetry(r)
	}

	// Slot-latency SLO burn rate: the scheduling phase should finish
	// within slotSLOBudget for at least slotSLOObjective of slots.
	telemetry.RegisterSLO(r, "slot", es.SlotLatency, slotSLOBudget, slotSLOObjective)
}

// slotSLOBudget and slotSLOObjective define the engine's slot-latency SLO
// exposed as wdm_slo_* gauges: 99.9% of scheduling phases within 1ms —
// generous against the measured µs-scale slot times, so a sustained burn
// rate above 1 always signals real scheduling-path trouble rather than
// noise.
const (
	slotSLOBudget    = time.Millisecond
	slotSLOObjective = 0.999
)
