package interconnect

import (
	"math"
	"testing"

	"wdmsched/internal/traffic"
	"wdmsched/internal/wavelength"
)

func circ(k, e, f int) wavelength.Conversion {
	return wavelength.MustNew(wavelength.Circular, k, e, f)
}

func mustSwitch(t *testing.T, cfg Config) *Switch {
	t.Helper()
	sw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func TestNewValidation(t *testing.T) {
	conv := circ(4, 1, 1)
	if _, err := New(Config{N: 0, Conv: conv}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := New(Config{N: 2, Conv: conv, Scheduler: "bogus"}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	if _, err := New(Config{N: 2, Conv: conv, Selector: "bogus"}); err == nil {
		t.Fatal("unknown selector accepted")
	}
}

// TestRunRejectsTraceShapeMismatch replays a trace recorded for a larger
// interconnect into a smaller switch: the shape mismatch must surface as
// an error from Run, never an index panic.
func TestRunRejectsTraceShapeMismatch(t *testing.T) {
	big := traffic.Config{N: 8, K: 8, Seed: 5}
	g, err := traffic.NewBernoulli(big, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traffic.Record(g, big, 20)
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range map[string]Config{
		"fewer fibers":      {N: 4, Conv: circ(8, 1, 1)},
		"fewer wavelengths": {N: 8, Conv: circ(4, 1, 1)},
	} {
		sw := mustSwitch(t, cfg)
		if _, err := sw.Run(tr.Replay(), len(tr.Slots)); err == nil {
			t.Errorf("%s: out-of-shape trace accepted", name)
		}
	}
}

func TestRunSlotRejectsBadPackets(t *testing.T) {
	sw := mustSwitch(t, Config{N: 2, Conv: circ(4, 1, 1)})
	bad := []traffic.Packet{
		{InputFiber: 5, DestFiber: 0, Wavelength: 0, Duration: 1},
		{InputFiber: 0, DestFiber: 5, Wavelength: 0, Duration: 1},
		{InputFiber: 0, DestFiber: 0, Wavelength: 9, Duration: 1},
		{InputFiber: 0, DestFiber: 0, Wavelength: 0, Duration: 0},
	}
	for _, p := range bad {
		if err := sw.RunSlot([]traffic.Packet{p}); err == nil {
			t.Fatalf("bad packet accepted: %+v", p)
		}
	}
}

func TestSingleSlotExactGrant(t *testing.T) {
	// Two packets on distinct wavelengths to the same output: both must
	// be granted under d=3 conversion.
	sw := mustSwitch(t, Config{N: 2, Conv: circ(6, 1, 1), ValidateFabric: true})
	pkts := []traffic.Packet{
		{InputFiber: 0, Wavelength: 0, DestFiber: 1, Duration: 1},
		{InputFiber: 1, Wavelength: 3, DestFiber: 1, Duration: 1},
	}
	if err := sw.RunSlot(pkts); err != nil {
		t.Fatal(err)
	}
	st := sw.Finalize()
	if st.Granted.Value() != 2 || st.OutputDropped.Value() != 0 {
		t.Fatalf("granted=%d dropped=%d", st.Granted.Value(), st.OutputDropped.Value())
	}
}

func TestContentionDropsExactlyExcess(t *testing.T) {
	// The paper's intro example as live traffic: 2 on λ1, 3 on λ2, 1 on
	// λ4, all to output 0, k=6 d=3 ⇒ exactly 5 granted, 1 dropped.
	sw := mustSwitch(t, Config{N: 6, Conv: circ(6, 1, 1), ValidateFabric: true})
	pkts := []traffic.Packet{
		{InputFiber: 0, Wavelength: 1, DestFiber: 0, Duration: 1},
		{InputFiber: 1, Wavelength: 1, DestFiber: 0, Duration: 1},
		{InputFiber: 2, Wavelength: 2, DestFiber: 0, Duration: 1},
		{InputFiber: 3, Wavelength: 2, DestFiber: 0, Duration: 1},
		{InputFiber: 4, Wavelength: 2, DestFiber: 0, Duration: 1},
		{InputFiber: 5, Wavelength: 4, DestFiber: 0, Duration: 1},
	}
	if err := sw.RunSlot(pkts); err != nil {
		t.Fatal(err)
	}
	st := sw.Finalize()
	if st.Granted.Value() != 5 || st.OutputDropped.Value() != 1 {
		t.Fatalf("granted=%d dropped=%d, want 5/1", st.Granted.Value(), st.OutputDropped.Value())
	}
}

func TestSequentialDistributedEquivalence(t *testing.T) {
	// The distributed claim: per-port schedulers share no state, so
	// goroutine-per-port execution must produce identical statistics.
	base := Config{N: 8, Conv: circ(8, 1, 1), Seed: 42, ValidateFabric: true}
	run := func(distributed bool) *Stats {
		cfg := base
		cfg.Distributed = distributed
		sw := mustSwitch(t, cfg)
		gen, err := traffic.NewBernoulli(traffic.Config{N: 8, K: 8, Seed: 7}, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sw.Run(gen, 300)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	seq := run(false)
	dist := run(true)
	if seq.Granted.Value() != dist.Granted.Value() ||
		seq.OutputDropped.Value() != dist.OutputDropped.Value() ||
		seq.InputBlocked.Value() != dist.InputBlocked.Value() ||
		seq.BusyChannelSlots.Value() != dist.BusyChannelSlots.Value() {
		t.Fatalf("sequential %+d/%d vs distributed %d/%d differ",
			seq.Granted.Value(), seq.OutputDropped.Value(),
			dist.Granted.Value(), dist.OutputDropped.Value())
	}
	for f := range seq.PerInputGranted {
		if seq.PerInputGranted[f] != dist.PerInputGranted[f] {
			t.Fatalf("per-input grants differ at fiber %d", f)
		}
	}
}

func TestConservationLaw(t *testing.T) {
	// Offered = Granted + InputBlocked + OutputDropped must hold exactly.
	for _, hold := range []traffic.HoldingTime{{}, {Mean: 4}} {
		sw := mustSwitch(t, Config{N: 4, Conv: circ(6, 1, 1), Seed: 3})
		gen, err := traffic.NewBernoulli(traffic.Config{N: 4, K: 6, Seed: 11, Hold: hold}, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sw.Run(gen, 500)
		if err != nil {
			t.Fatal(err)
		}
		sum := st.Granted.Value() + st.InputBlocked.Value() + st.OutputDropped.Value()
		if sum != st.Offered.Value() {
			t.Fatalf("hold=%v: %d+%d+%d != offered %d", hold,
				st.Granted.Value(), st.InputBlocked.Value(), st.OutputDropped.Value(), st.Offered.Value())
		}
		if st.Offered.Value() == 0 {
			t.Fatal("no traffic generated")
		}
	}
}

func TestLowLoadNoLoss(t *testing.T) {
	// A single flow with no contention must never drop.
	sw := mustSwitch(t, Config{N: 4, Conv: circ(6, 1, 1), ValidateFabric: true})
	for slot := 0; slot < 100; slot++ {
		pkts := []traffic.Packet{{InputFiber: 0, Wavelength: slot % 6, DestFiber: 2, Duration: 1, Slot: slot}}
		if err := sw.RunSlot(pkts); err != nil {
			t.Fatal(err)
		}
	}
	st := sw.Finalize()
	if st.LossRate() != 0 {
		t.Fatalf("loss %v on contention-free traffic", st.LossRate())
	}
	if st.Granted.Value() != 100 {
		t.Fatalf("granted = %d", st.Granted.Value())
	}
}

func TestMultiSlotHoldsBlockChannels(t *testing.T) {
	// One output, k=2, full range. Slot 0: two packets with duration 3
	// occupy both channels; slots 1–2: new packets must be dropped at the
	// output; slot 3: channels free again.
	conv := wavelength.MustNew(wavelength.Full, 2, 0, 0)
	sw := mustSwitch(t, Config{N: 4, Conv: conv, ValidateFabric: true})
	mk := func(in, w int, dur int) traffic.Packet {
		return traffic.Packet{InputFiber: in, Wavelength: w, DestFiber: 0, Duration: dur}
	}
	if err := sw.RunSlot([]traffic.Packet{mk(0, 0, 3), mk(1, 1, 3)}); err != nil {
		t.Fatal(err)
	}
	for slot := 1; slot <= 2; slot++ {
		if err := sw.RunSlot([]traffic.Packet{mk(2, 0, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.RunSlot([]traffic.Packet{mk(2, 1, 1)}); err != nil {
		t.Fatal(err)
	}
	st := sw.Finalize()
	if st.Granted.Value() != 3 { // slot 0 (×2) + slot 3
		t.Fatalf("granted = %d, want 3", st.Granted.Value())
	}
	if st.OutputDropped.Value() != 2 {
		t.Fatalf("dropped = %d, want 2", st.OutputDropped.Value())
	}
	// Channel-slots: 2 channels × 3 slots + 1 × 1 slot = 7.
	if st.BusyChannelSlots.Value() != 7 {
		t.Fatalf("busy channel-slots = %d, want 7", st.BusyChannelSlots.Value())
	}
}

func TestInputBlocking(t *testing.T) {
	// A held input channel cannot launch a new packet mid-transmission.
	conv := wavelength.MustNew(wavelength.Full, 2, 0, 0)
	sw := mustSwitch(t, Config{N: 2, Conv: conv})
	mk := func(dest int, dur int) traffic.Packet {
		return traffic.Packet{InputFiber: 0, Wavelength: 0, DestFiber: dest, Duration: dur}
	}
	if err := sw.RunSlot([]traffic.Packet{mk(0, 3)}); err != nil {
		t.Fatal(err)
	}
	// Same input channel tries a different destination while held.
	if err := sw.RunSlot([]traffic.Packet{mk(1, 1)}); err != nil {
		t.Fatal(err)
	}
	st := sw.Finalize()
	if st.InputBlocked.Value() != 1 {
		t.Fatalf("input blocked = %d, want 1", st.InputBlocked.Value())
	}
	if st.Granted.Value() != 1 {
		t.Fatalf("granted = %d, want 1", st.Granted.Value())
	}
}

func TestDisturbModeReassignsInsteadOfBlocking(t *testing.T) {
	// k=2 non-circular, e=f=0 would be degenerate; use k=3, e=f=1.
	// Slot 0: a duration-3 connection on λ1 lands on some channel.
	// Slot 1: two new λ0/λ2 packets arrive. In no-disturb mode the held
	// channel may block one of them; in disturb mode the held connection
	// can be re-placed so all fit whenever a perfect assignment exists.
	conv := circ(3, 1, 1) // d=3=k → full range fast path; use k=4 instead
	conv = circ(4, 1, 1)
	mk := func(in, w, dest, dur int) traffic.Packet {
		return traffic.Packet{InputFiber: in, Wavelength: w, DestFiber: dest, Duration: dur}
	}
	run := func(disturb bool) *Stats {
		sw := mustSwitch(t, Config{N: 4, Conv: conv, Disturb: disturb, ValidateFabric: true})
		if err := sw.RunSlot([]traffic.Packet{mk(0, 1, 0, 3)}); err != nil {
			t.Fatal(err)
		}
		// Three more packets so that all four channels are needed; the
		// held λ1 connection sits on channel 0 (first-available picks
		// the minus edge), which λ0 needs in the no-disturb case.
		if err := sw.RunSlot([]traffic.Packet{
			mk(1, 0, 0, 1), mk(2, 1, 0, 1), mk(3, 2, 0, 1),
		}); err != nil {
			t.Fatal(err)
		}
		return sw.Finalize()
	}
	noDisturb := run(false)
	disturb := run(true)
	if disturb.Granted.Value() < noDisturb.Granted.Value() {
		t.Fatalf("disturb mode granted %d < no-disturb %d",
			disturb.Granted.Value(), noDisturb.Granted.Value())
	}
	if disturb.Granted.Value() != 4 {
		t.Fatalf("disturb mode granted %d, want all 4", disturb.Granted.Value())
	}
}

func TestFinalizeIsTerminal(t *testing.T) {
	sw := mustSwitch(t, Config{N: 2, Conv: circ(4, 1, 1)})
	sw.Finalize()
	if err := sw.RunSlot(nil); err == nil {
		t.Fatal("RunSlot after Finalize accepted")
	}
	// Finalize is idempotent.
	a := sw.Finalize()
	b := sw.Finalize()
	if a != b {
		t.Fatal("Finalize not idempotent")
	}
}

func TestStatsDerivedQuantities(t *testing.T) {
	st := newStats(2, 4, 1)
	if st.LossRate() != 0 || st.AcceptanceRate() != 0 || st.Throughput(2, 4) != 0 || st.Utilization(2, 4) != 0 {
		t.Fatal("empty stats must be zero")
	}
	st.Slots = 10
	st.Offered.Add(100)
	st.Granted.Add(80)
	st.BusyChannelSlots.Add(40)
	if math.Abs(st.LossRate()-0.2) > 1e-12 {
		t.Fatalf("LossRate = %v", st.LossRate())
	}
	if math.Abs(st.AcceptanceRate()-0.8) > 1e-12 {
		t.Fatalf("AcceptanceRate = %v", st.AcceptanceRate())
	}
	if math.Abs(st.Throughput(2, 4)-1.0) > 1e-12 {
		t.Fatalf("Throughput = %v", st.Throughput(2, 4))
	}
	if math.Abs(st.Utilization(2, 4)-0.5) > 1e-12 {
		t.Fatalf("Utilization = %v", st.Utilization(2, 4))
	}
	st.PerInputGranted[0], st.PerInputGranted[1] = 40, 40
	if math.Abs(st.FairnessJain()-1) > 1e-12 {
		t.Fatalf("Jain = %v", st.FairnessJain())
	}
}

func TestFullRangeBeatsLimitedRangeUnderStress(t *testing.T) {
	// Sanity direction check for experiment S1: at very high load,
	// full range conversion grants at least as much as d=1 (no
	// conversion).
	run := func(conv wavelength.Conversion) int64 {
		sw := mustSwitch(t, Config{N: 4, Conv: conv, Seed: 5})
		gen, err := traffic.NewBernoulli(traffic.Config{N: 4, K: 8, Seed: 13}, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sw.Run(gen, 200)
		if err != nil {
			t.Fatal(err)
		}
		return st.Granted.Value()
	}
	none := run(circ(8, 0, 0)) // d=1: no conversion
	full := run(wavelength.MustNew(wavelength.Full, 8, 0, 0))
	if full <= none {
		t.Fatalf("full range %d not better than no conversion %d", full, none)
	}
}

func TestSchedulerFlagSelectsAlgorithm(t *testing.T) {
	// Approximation scheduler must not beat the exact one, and must be
	// close (gap ≤ (d−1)/2 per fiber-slot; aggregate gap small).
	run := func(name string) int64 {
		sw := mustSwitch(t, Config{N: 4, Conv: circ(8, 1, 1), Scheduler: name, Seed: 9})
		gen, err := traffic.NewBernoulli(traffic.Config{N: 4, K: 8, Seed: 17}, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sw.Run(gen, 200)
		if err != nil {
			t.Fatal(err)
		}
		return st.Granted.Value()
	}
	exact := run("break-first-available")
	approx := run("shortest-edge")
	if approx > exact {
		t.Fatalf("approximation %d beat exact %d", approx, exact)
	}
	if float64(approx) < 0.9*float64(exact) {
		t.Fatalf("approximation %d too far below exact %d", approx, exact)
	}
}

func TestHotspotConcentratesLossOnHotFiber(t *testing.T) {
	// With half of all traffic aimed at fiber 0, contention (and loss)
	// concentrates there while the overall conservation law still holds.
	sw := mustSwitch(t, Config{N: 8, Conv: circ(8, 1, 1), Seed: 31})
	gen, err := traffic.NewHotspot(traffic.Config{N: 8, K: 8, Seed: 33}, 0.8, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sw.Run(gen, 400)
	if err != nil {
		t.Fatal(err)
	}
	if st.Granted.Value()+st.OutputDropped.Value()+st.InputBlocked.Value() != st.Offered.Value() {
		t.Fatal("conservation violated under hotspot traffic")
	}
	if st.LossRate() <= 0.05 {
		t.Fatalf("hotspot at load 0.8 should show significant loss, got %v", st.LossRate())
	}
}

func TestBurstyTrafficIntegration(t *testing.T) {
	sw := mustSwitch(t, Config{N: 4, Conv: circ(8, 1, 1), Seed: 35, ValidateFabric: true})
	gen, err := traffic.NewBursty(traffic.Config{N: 4, K: 8, Seed: 37}, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sw.Run(gen, 400)
	if err != nil {
		t.Fatal(err)
	}
	if st.Offered.Value() == 0 || st.Granted.Value() == 0 {
		t.Fatal("bursty run produced no traffic/grants")
	}
	if st.Granted.Value()+st.OutputDropped.Value()+st.InputBlocked.Value() != st.Offered.Value() {
		t.Fatal("conservation violated under bursty traffic")
	}
}

func TestDisturbDistributedEquivalence(t *testing.T) {
	// Disturb-mode rescheduling with multi-slot holds must also be
	// identical across sequential and distributed execution (per-port
	// independence includes the preemption bookkeeping).
	run := func(distributed bool) *Stats {
		sw := mustSwitch(t, Config{
			N: 6, Conv: circ(8, 1, 1), Seed: 39,
			Disturb: true, Distributed: distributed,
		})
		gen, err := traffic.NewBernoulli(traffic.Config{
			N: 6, K: 8, Seed: 41, Hold: traffic.HoldingTime{Mean: 3},
		}, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sw.Run(gen, 300)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	seq, dist := run(false), run(true)
	if seq.Granted.Value() != dist.Granted.Value() ||
		seq.Preempted.Value() != dist.Preempted.Value() ||
		seq.InputBlocked.Value() != dist.InputBlocked.Value() ||
		seq.OutputDropped.Value() != dist.OutputDropped.Value() {
		t.Fatalf("disturb mode diverged: seq {g=%d p=%d} vs dist {g=%d p=%d}",
			seq.Granted.Value(), seq.Preempted.Value(),
			dist.Granted.Value(), dist.Preempted.Value())
	}
}

func TestFixedPrioritySelectorIsUnfairUnderContention(t *testing.T) {
	run := func(sel string) float64 {
		sw := mustSwitch(t, Config{N: 8, Conv: circ(4, 1, 1), Selector: sel, Seed: 43})
		gen, err := traffic.NewBernoulli(traffic.Config{N: 8, K: 4, Seed: 45}, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sw.Run(gen, 400)
		if err != nil {
			t.Fatal(err)
		}
		return st.FairnessJain()
	}
	rr := run("round-robin")
	fx := run("fixed-priority")
	if rr < 0.99 {
		t.Fatalf("round-robin Jain = %v, want ≈1", rr)
	}
	if fx >= rr {
		t.Fatalf("fixed-priority (Jain %v) should be less fair than round-robin (%v)", fx, rr)
	}
}

func TestPerChannelBusyConsistent(t *testing.T) {
	sw := mustSwitch(t, Config{N: 4, Conv: circ(6, 1, 1), Seed: 51})
	gen, err := traffic.NewBernoulli(traffic.Config{N: 4, K: 6, Seed: 53, Hold: traffic.HoldingTime{Mean: 2}}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sw.Run(gen, 200)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, v := range st.PerChannelBusy {
		sum += v
	}
	if sum != st.BusyChannelSlots.Value() {
		t.Fatalf("per-channel busy sums to %d, total %d", sum, st.BusyChannelSlots.Value())
	}
	if sum == 0 {
		t.Fatal("no busy channel-slots recorded")
	}
}

func TestMatchSizeHistogramPopulated(t *testing.T) {
	sw := mustSwitch(t, Config{N: 4, Conv: circ(6, 1, 1), Seed: 47})
	gen, err := traffic.NewBernoulli(traffic.Config{N: 4, K: 6, Seed: 49}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sw.Run(gen, 100)
	if err != nil {
		t.Fatal(err)
	}
	// One observation per port per slot.
	if st.MatchSizes.Count() != 4*100 {
		t.Fatalf("histogram count = %d, want 400", st.MatchSizes.Count())
	}
	if st.MatchSizes.Mean() <= 0 {
		t.Fatal("mean match size should be positive at load 0.9")
	}
}

func TestRandomSelectorMode(t *testing.T) {
	sw := mustSwitch(t, Config{N: 4, Conv: circ(6, 1, 1), Selector: "random", Seed: 21, ValidateFabric: true})
	gen, err := traffic.NewBernoulli(traffic.Config{N: 4, K: 6, Seed: 23}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sw.Run(gen, 200)
	if err != nil {
		t.Fatal(err)
	}
	if st.Granted.Value() == 0 {
		t.Fatal("nothing granted")
	}
	if j := st.FairnessJain(); j < 0.9 {
		t.Fatalf("random selector unfair: Jain = %v", j)
	}
}
