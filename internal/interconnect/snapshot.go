package interconnect

import (
	"fmt"
	"sync/atomic"
)

// Snapshot is a consistent view of a switch's cumulative counters taken
// between slots. Port-local counters are merged into the run totals only
// at Finalize, so mid-run the exact value of every statistic is
// "run totals + Σ port locals" — the same identity the live telemetry
// collectors use (telemetry.go). Snapshot materializes that view without
// disturbing the counters, so it is valid before, during, and after the
// merge, and two engines fed identical arrivals and faults produce
// identical Snapshots at every slot boundary — the equivalence invariant
// wdmsoak checks on every resync point.
type Snapshot struct {
	Slots            int64
	Offered          int64
	Granted          int64
	InputBlocked     int64
	OutputDropped    int64
	Preempted        int64
	BusyChannelSlots int64
	FaultLostGrants  int64
	FaultKilled      int64
	PerInput         []int64 // grants per input fiber
	PerChannel       []int64 // busy slots per output wavelength channel
}

// Snapshot fills snap with the switch's current cumulative counters,
// reusing snap's slices. It must be called between RunSlot calls (all
// engines are synchronous per slot, so port counters are settled then).
func (s *Switch) Snapshot(snap *Snapshot) {
	n, k := s.cfg.N, s.k
	if cap(snap.PerInput) < n {
		snap.PerInput = make([]int64, n)
	}
	if cap(snap.PerChannel) < k {
		snap.PerChannel = make([]int64, k)
	}
	snap.PerInput = snap.PerInput[:n]
	snap.PerChannel = snap.PerChannel[:k]

	st := s.stats
	snap.Slots = s.slotsDone.Load()
	snap.Offered = st.Offered.Value()
	snap.Granted = st.Granted.Value()
	snap.InputBlocked = st.InputBlocked.Value()
	snap.OutputDropped = st.OutputDropped.Value()
	snap.Preempted = st.Preempted.Value()
	snap.BusyChannelSlots = st.BusyChannelSlots.Value()
	for f := 0; f < n; f++ {
		snap.PerInput[f] = atomic.LoadInt64(&st.PerInputGranted[f])
	}
	for b := 0; b < k; b++ {
		snap.PerChannel[b] = atomic.LoadInt64(&st.PerChannelBusy[b])
	}
	snap.FaultLostGrants, snap.FaultKilled = 0, 0
	if st.Fault != nil {
		snap.FaultLostGrants = st.Fault.LostGrants.Value()
		snap.FaultKilled = st.Fault.KilledConnections.Value()
	}
	for _, p := range s.ports {
		snap.Offered += atomic.LoadInt64(&p.offered)
		snap.Granted += atomic.LoadInt64(&p.granted)
		snap.OutputDropped += atomic.LoadInt64(&p.outputDropped)
		snap.Preempted += atomic.LoadInt64(&p.preempted)
		snap.BusyChannelSlots += atomic.LoadInt64(&p.busyslots)
		snap.FaultLostGrants += atomic.LoadInt64(&p.faultLost)
		snap.FaultKilled += atomic.LoadInt64(&p.faultKilled)
		for f := 0; f < n; f++ {
			snap.PerInput[f] += atomic.LoadInt64(&p.perInputGranted[f])
		}
		for b := 0; b < k; b++ {
			snap.PerChannel[b] += atomic.LoadInt64(&p.busyPerChannel[b])
		}
	}
}

// Conserved checks the packet-accounting partition
// Offered = Granted + InputBlocked + OutputDropped, returning a
// description of the imbalance or "" when it holds.
func (sn *Snapshot) Conserved() string {
	if got := sn.Granted + sn.InputBlocked + sn.OutputDropped; got != sn.Offered {
		return fmt.Sprintf("offered %d != granted %d + input-blocked %d + output-dropped %d (= %d)",
			sn.Offered, sn.Granted, sn.InputBlocked, sn.OutputDropped, got)
	}
	var perInput int64
	for _, g := range sn.PerInput {
		perInput += g
	}
	if perInput != sn.Granted {
		return fmt.Sprintf("Σ per-input grants %d != granted %d", perInput, sn.Granted)
	}
	var perChannel int64
	for _, b := range sn.PerChannel {
		perChannel += b
	}
	if perChannel != sn.BusyChannelSlots {
		return fmt.Sprintf("Σ per-channel busy %d != busy channel-slots %d", perChannel, sn.BusyChannelSlots)
	}
	return ""
}

// Diff compares two snapshots field by field, returning a description of
// the first difference or "" when they are identical.
func (sn *Snapshot) Diff(other *Snapshot) string {
	type field struct {
		name string
		a, b int64
	}
	for _, f := range []field{
		{"slots", sn.Slots, other.Slots},
		{"offered", sn.Offered, other.Offered},
		{"granted", sn.Granted, other.Granted},
		{"input-blocked", sn.InputBlocked, other.InputBlocked},
		{"output-dropped", sn.OutputDropped, other.OutputDropped},
		{"preempted", sn.Preempted, other.Preempted},
		{"busy-channel-slots", sn.BusyChannelSlots, other.BusyChannelSlots},
		{"fault-lost-grants", sn.FaultLostGrants, other.FaultLostGrants},
		{"fault-killed", sn.FaultKilled, other.FaultKilled},
	} {
		if f.a != f.b {
			return fmt.Sprintf("%s: %d vs %d", f.name, f.a, f.b)
		}
	}
	if len(sn.PerInput) != len(other.PerInput) {
		return fmt.Sprintf("per-input length: %d vs %d", len(sn.PerInput), len(other.PerInput))
	}
	for f, g := range sn.PerInput {
		if g != other.PerInput[f] {
			return fmt.Sprintf("per-input[%d]: %d vs %d", f, g, other.PerInput[f])
		}
	}
	if len(sn.PerChannel) != len(other.PerChannel) {
		return fmt.Sprintf("per-channel length: %d vs %d", len(sn.PerChannel), len(other.PerChannel))
	}
	for b, c := range sn.PerChannel {
		if c != other.PerChannel[b] {
			return fmt.Sprintf("per-channel[%d]: %d vs %d", b, c, other.PerChannel[b])
		}
	}
	return ""
}

// SlotGrant is one switched connection of the most recent slot, as exposed
// by LastGrants for closed-loop drivers (bulk transfers, grant ledgers).
type SlotGrant struct {
	InputFiber  int
	Wavelength  int
	OutputFiber int
	Channel     int
	Duration    int
	Held        bool // disturb-mode re-placement of an existing connection
}

// LastGrants appends the connections switched in the most recent RunSlot
// call to dst and returns it. The view is valid until the next RunSlot;
// it allocates nothing when dst has capacity.
func (s *Switch) LastGrants(dst []SlotGrant) []SlotGrant {
	for o, grants := range s.results {
		for _, g := range grants {
			dst = append(dst, SlotGrant{
				InputFiber:  g.fiber,
				Wavelength:  g.wave,
				OutputFiber: o,
				Channel:     g.channel,
				Duration:    g.duration,
				Held:        g.held,
			})
		}
	}
	return dst
}
