package interconnect

import (
	"testing"

	"wdmsched/internal/traffic"
)

func prioritizedGen(t *testing.T, n, k int, load float64, probs []float64, seed uint64) traffic.Generator {
	t.Helper()
	base, err := traffic.NewBernoulli(traffic.Config{N: n, K: k, Seed: seed}, load)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := traffic.WithPriorities(base, probs, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

func TestPriorityClassesValidation(t *testing.T) {
	conv := circ(6, 1, 1)
	if _, err := New(Config{N: 2, Conv: conv, PriorityClasses: 2, Disturb: true}); err == nil {
		t.Fatal("classes + disturb accepted")
	}
	if _, err := New(Config{N: 2, Conv: conv, PriorityClasses: 2, Scheduler: "shortest-edge"}); err == nil {
		t.Fatal("classes + approximate scheduler accepted")
	}
	if _, err := New(Config{N: 2, Conv: conv, PriorityClasses: 2}); err != nil {
		t.Fatalf("valid QoS config rejected: %v", err)
	}
}

// TestPriorityClassesIsolateHighClass: under overload, the high class's
// loss must stay far below the low class's — the strict-priority property,
// end to end through the switch.
func TestPriorityClassesIsolateHighClass(t *testing.T) {
	const n, k = 6, 8
	sw := mustSwitch(t, Config{N: n, Conv: circ(k, 1, 1), PriorityClasses: 2, Seed: 3, ValidateFabric: true})
	gen := prioritizedGen(t, n, k, 1.0, []float64{0.2, 0.8}, 7)
	st, err := sw.Run(gen, 400)
	if err != nil {
		t.Fatal(err)
	}
	if st.PerClassOffered[0] == 0 || st.PerClassOffered[1] == 0 {
		t.Fatal("both classes must see traffic")
	}
	if st.PerClassOffered[0]+st.PerClassOffered[1] != st.Offered.Value() {
		t.Fatal("per-class offered does not sum to total")
	}
	if st.PerClassGranted[0]+st.PerClassGranted[1] != st.Granted.Value() {
		t.Fatal("per-class granted does not sum to total")
	}
	high, low := st.ClassLossRate(0), st.ClassLossRate(1)
	if high >= low {
		t.Fatalf("high class loss %v not below low class loss %v", high, low)
	}
	if high > 0.02 {
		t.Fatalf("high class loss %v too large at 20%% share", high)
	}
}

// TestPriorityClassesConservation: the standard conservation law holds in
// QoS mode too.
func TestPriorityClassesConservation(t *testing.T) {
	const n, k = 4, 6
	sw := mustSwitch(t, Config{N: n, Conv: circ(k, 1, 1), PriorityClasses: 3, Seed: 9})
	gen := prioritizedGen(t, n, k, 0.9, []float64{0.3, 0.3, 0.4}, 11)
	st, err := sw.Run(gen, 300)
	if err != nil {
		t.Fatal(err)
	}
	if st.Granted.Value()+st.OutputDropped.Value()+st.InputBlocked.Value() != st.Offered.Value() {
		t.Fatal("conservation violated in QoS mode")
	}
}

// TestPriorityClassesDistributedEquivalence: QoS mode is per-port local,
// so distributed execution must match sequential exactly.
func TestPriorityClassesDistributedEquivalence(t *testing.T) {
	run := func(distributed bool) *Stats {
		sw := mustSwitch(t, Config{
			N: 4, Conv: circ(8, 1, 1), PriorityClasses: 2,
			Seed: 13, Distributed: distributed,
		})
		gen := prioritizedGen(t, 4, 8, 0.9, []float64{0.5, 0.5}, 17)
		st, err := sw.Run(gen, 200)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	seq, dist := run(false), run(true)
	for c := 0; c < 2; c++ {
		if seq.PerClassGranted[c] != dist.PerClassGranted[c] {
			t.Fatalf("class %d grants differ: %d vs %d", c, seq.PerClassGranted[c], dist.PerClassGranted[c])
		}
	}
}

// TestUnknownClassClampsToLowest: a packet with Priority beyond the
// configured class count is treated as lowest priority, not dropped.
func TestUnknownClassClampsToLowest(t *testing.T) {
	sw := mustSwitch(t, Config{N: 2, Conv: circ(4, 1, 1), PriorityClasses: 2})
	pkts := []traffic.Packet{
		{InputFiber: 0, Wavelength: 0, DestFiber: 0, Duration: 1, Priority: 9},
	}
	if err := sw.RunSlot(pkts); err != nil {
		t.Fatal(err)
	}
	st := sw.Finalize()
	if st.PerClassGranted[1] != 1 {
		t.Fatalf("clamped packet not granted in lowest class: %+v", st.PerClassGranted)
	}
}

func TestClassLossRateBounds(t *testing.T) {
	st := newStats(2, 4, 2)
	if st.ClassLossRate(0) != 0 || st.ClassLossRate(-1) != 0 || st.ClassLossRate(9) != 0 {
		t.Fatal("degenerate class loss must be 0")
	}
	st.PerClassOffered[0] = 10
	st.PerClassGranted[0] = 7
	if got := st.ClassLossRate(0); got < 0.299 || got > 0.301 {
		t.Fatalf("loss = %v", got)
	}
}
