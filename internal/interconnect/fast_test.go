package interconnect

import (
	"fmt"
	"testing"

	"wdmsched/internal/fault"
	"wdmsched/internal/wavelength"
)

// TestFastSchedulerStatsEquivalence runs the word-parallel kernels
// (Config{Scheduler: "fast"}) against the scalar exact schedulers at
// word-boundary k, through both engines, with holding times, disturb
// mode, and a Markov fault schedule. Statistics must be identical — which
// only holds if every per-slot Result is byte-identical. The distributed
// fast legs, run under -race by the race gate, also cover the kernel
// path's mask/occupancy handoff.
func TestFastSchedulerStatsEquivalence(t *testing.T) {
	for _, tc := range []struct {
		kind    wavelength.Kind
		k, e, f int
		disturb bool
		faults  bool
	}{
		{wavelength.Circular, 63, 2, 1, false, false},
		{wavelength.Circular, 64, 3, 4, true, false},
		{wavelength.Circular, 65, 1, 1, false, true},
		{wavelength.NonCircular, 128, 2, 2, false, true},
		{wavelength.Circular, 129, 4, 3, true, false},
	} {
		name := fmt.Sprintf("%v/k=%d/disturb=%v/faults=%v", tc.kind, tc.k, tc.disturb, tc.faults)
		t.Run(name, func(t *testing.T) {
			conv := wavelength.MustNew(tc.kind, tc.k, tc.e, tc.f)
			mk := func() fault.Injector {
				if !tc.faults {
					return nil
				}
				m, err := fault.NewMarkov(fault.MarkovConfig{
					N: 4, K: tc.k, Seed: 9,
					ConverterFail: 0.02, ConverterRepair: 0.2,
					ChannelDark: 0.01, ChannelRestore: 0.2,
				})
				if err != nil {
					t.Fatal(err)
				}
				return m
			}
			base := Config{N: 4, Conv: conv, Seed: 31, Disturb: tc.disturb}
			run := func(sched string, distributed bool) *Stats {
				cfg := base
				cfg.Scheduler = sched
				cfg.Distributed = distributed
				cfg.Faults = mk()
				return faultRun(t, cfg, 0.8, 80)
			}
			ref := run("exact", false)
			requireStatsEqual(t, "seq/fast", ref, run("fast", false))
			requireStatsEqual(t, "dist/fast", ref, run("fast", true))
		})
	}
}
