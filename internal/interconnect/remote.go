package interconnect

import (
	"wdmsched/internal/core"
	"wdmsched/internal/metrics"
	"wdmsched/internal/telemetry"
)

// BatchRequest is one output port's scheduling instance for the current
// slot, as handed to a remote batch scheduler: the request vector the
// port's prepare phase derived, the channel occupancy from held
// connections, and the fault mask (nil when every channel is healthy).
// All slices are switch-owned scratch, valid and immutable until
// ScheduleBatch returns.
type BatchRequest struct {
	Port     int
	Count    []int            // per-wavelength request counts, len k
	Occupied []bool           // per-channel occupancy, len k
	Mask     core.ChannelMask // per-channel fault state, nil = all healthy
}

// BatchResult addresses where a batch scheduler writes one port's
// decision. Res is the port's live result buffer (pre-sized to k); Shadow
// is non-nil exactly when the request carries a fault mask, and must then
// receive the healthy-graph matching of the same instance so degraded-mode
// accounting can attribute lost grants to the faults.
type BatchResult struct {
	Port   int
	Res    *core.Result
	Shadow *core.Result
}

// BatchScheduler resolves one slot's output contention for every port at
// once. Implementations must be deterministic functions of the requests —
// the switch asserts that a run through a BatchScheduler produces Stats
// identical to the in-process engines — and must fill out[i] for every
// reqs[i] before returning. A non-nil error aborts the run; transient
// transport trouble is the implementation's to absorb (retry or local
// fallback), not to surface here.
//
// The cluster controller (internal/cluster) is the production
// implementation: it shards ports across worker nodes over TCP or unix
// sockets and schedules locally when a node misses its slot deadline.
type BatchScheduler interface {
	ScheduleBatch(slot int64, reqs []BatchRequest, out []BatchResult) error
}

// ClusterStatsSource is implemented by batch schedulers that track
// cluster runtime statistics; the switch links the stats into
// Stats.Cluster at construction so they surface with the run totals.
type ClusterStatsSource interface {
	ClusterStats() *ClusterStats
}

// SpanSource is implemented by batch schedulers that record distributed
// tracing spans. When the switch detects it on Config.Remote at
// construction, the slot loop emits its own prepare/commit/slot spans
// into the same tracer (on lane 0), so a single dump holds the whole
// controller-side span tree.
type SpanSource interface {
	Spans() *telemetry.SpanTracer
}

// ClusterStats reports the runtime behavior of a networked cluster run:
// how scheduling work split between remote nodes and the controller's
// local fallback, and what the transport cost. Counters are written by the
// cluster controller and safe to read live.
type ClusterStats struct {
	// Nodes is the number of worker nodes the controller partitioned the
	// output ports across.
	Nodes int
	// RemoteItems counts port-slots whose scheduling decision was computed
	// by a remote node.
	RemoteItems metrics.Counter
	// EmptyItems counts port-slots short-circuited on the controller
	// because the request vector was all zero (an empty matching needs no
	// RPC).
	EmptyItems metrics.Counter
	// LocalFallbackItems counts port-slots scheduled locally because the
	// owning node missed its slot deadline, errored, or was marked
	// unhealthy — the graceful-degradation path that keeps slots from
	// stalling.
	LocalFallbackItems metrics.Counter
	// FallbackSlots counts slots in which at least one port fell back to
	// local scheduling.
	FallbackSlots metrics.Counter
	// Retries counts re-sent scheduling RPCs (bounded exponential backoff
	// with jitter).
	Retries metrics.Counter
	// DeadlineMisses counts RPC attempts that exceeded their deadline.
	DeadlineMisses metrics.Counter
	// Reconnects counts successful re-establishments of a node session
	// after a transport failure.
	Reconnects metrics.Counter
	// BytesSent and BytesReceived total the wire traffic between the
	// controller and all nodes, frame headers and checksums included;
	// FramesSent and FramesReceived count the frames themselves. On a
	// fault-free run the controller's FramesSent equals the sum of the
	// nodes' received-frame counters (and vice versa) — the cross-process
	// consistency invariant the cluster smoke test asserts.
	BytesSent      metrics.Counter
	BytesReceived  metrics.Counter
	FramesSent     metrics.Counter
	FramesReceived metrics.Counter
	// RPCLatency is the distribution of successful schedule-RPC round
	// trips, aggregated over nodes.
	RPCLatency *metrics.DurationHistogram
	// Per-stage latency attribution of the distributed slot pipeline
	// (wire v2 tracing). PrepareTime and CommitTime are observed by the
	// switch around ScheduleBatch; EncodeTime by the controller per RPC;
	// the Node* histograms come from the timestamps every grants frame
	// piggybacks (node frame receipt → decode done → schedule barrier →
	// reply encoded), so attribution works even without span dumps.
	PrepareTime      *metrics.DurationHistogram
	EncodeTime       *metrics.DurationHistogram
	NodeDecodeTime   *metrics.DurationHistogram
	NodeScheduleTime *metrics.DurationHistogram
	NodeEncodeTime   *metrics.DurationHistogram
	CommitTime       *metrics.DurationHistogram
}

// NewClusterStats returns zeroed cluster statistics for a controller
// spanning the given number of nodes.
func NewClusterStats(nodes int) *ClusterStats {
	return &ClusterStats{
		Nodes:            nodes,
		RPCLatency:       metrics.NewDurationHistogram(),
		PrepareTime:      metrics.NewDurationHistogram(),
		EncodeTime:       metrics.NewDurationHistogram(),
		NodeDecodeTime:   metrics.NewDurationHistogram(),
		NodeScheduleTime: metrics.NewDurationHistogram(),
		NodeEncodeTime:   metrics.NewDurationHistogram(),
		CommitTime:       metrics.NewDurationHistogram(),
	}
}

// RemoteFraction is the fraction of non-empty scheduling decisions
// computed remotely (1.0 = every RPC met its deadline).
func (c *ClusterStats) RemoteFraction() float64 {
	r := c.RemoteItems.Value()
	l := c.LocalFallbackItems.Value()
	if r+l == 0 {
		return 0
	}
	return float64(r) / float64(r+l)
}
