package interconnect

import (
	"testing"

	"wdmsched/internal/analysis"
	"wdmsched/internal/fault"
	"wdmsched/internal/traffic"
	"wdmsched/internal/wavelength"
)

func snapTestSwitch(t *testing.T, distributed bool, seed uint64) *Switch {
	t.Helper()
	conv, err := wavelength.New(wavelength.Circular, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.NewMarkov(fault.MarkovConfig{
		N: 6, K: 8, Seed: seed + 7,
		ConverterFail: 0.002, ConverterRepair: 0.05,
		ChannelDark: 0.001, ChannelRestore: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := New(Config{
		N: 6, Conv: conv, Seed: seed, Distributed: distributed, Faults: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

// TestSnapshotConservationAndFinalize checks the mid-run snapshot
// identity (totals + port locals), the packet-count partition, and that
// the snapshot is unchanged by Finalize's destructive merge.
func TestSnapshotConservationAndFinalize(t *testing.T) {
	sw := snapTestSwitch(t, false, 3)
	gen, err := traffic.NewHeavyTail(traffic.Config{N: 6, K: 8, Seed: 5, Hold: traffic.HoldingTime{Mean: 3}}, 0.4, 1.5, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	var buf []traffic.Packet
	var snap Snapshot
	for s := 0; s < 400; s++ {
		buf = gen.Generate(s, buf[:0])
		if err := sw.RunSlot(buf); err != nil {
			t.Fatal(err)
		}
		if s%37 == 0 {
			sw.Snapshot(&snap)
			if msg := snap.Conserved(); msg != "" {
				t.Fatalf("slot %d: conservation violated: %s", s, msg)
			}
			if snap.Slots != int64(s+1) {
				t.Fatalf("snapshot slots %d, want %d", snap.Slots, s+1)
			}
		}
	}
	var before Snapshot
	sw.Snapshot(&before)
	stats := sw.Finalize()
	var after Snapshot
	sw.Snapshot(&after)
	if msg := before.Diff(&after); msg != "" {
		t.Fatalf("snapshot changed across Finalize: %s", msg)
	}
	if before.Offered != stats.Offered.Value() || before.Granted != stats.Granted.Value() ||
		before.OutputDropped != stats.OutputDropped.Value() || before.InputBlocked != stats.InputBlocked.Value() {
		t.Fatalf("snapshot %+v disagrees with finalized stats", before)
	}
	if before.Offered == 0 || before.Granted == 0 {
		t.Fatal("degenerate run: no traffic")
	}
	if before.FaultLostGrants == 0 && before.FaultKilled == 0 {
		t.Log("note: fault chain produced no losses this seed")
	}
}

// TestSnapshotEquivalenceAcrossEngines drives the sequential and
// distributed engines in lockstep on identical arrivals and faults and
// requires identical snapshots at every resync point — the wdmsoak
// equivalence invariant.
func TestSnapshotEquivalenceAcrossEngines(t *testing.T) {
	seq := snapTestSwitch(t, false, 11)
	dist := snapTestSwitch(t, true, 11)
	genSeq, err := traffic.NewSelfSimilar(traffic.Config{N: 6, K: 8, Seed: 21}, 0.5, 1.5, 96)
	if err != nil {
		t.Fatal(err)
	}
	genDist, err := traffic.NewSelfSimilar(traffic.Config{N: 6, K: 8, Seed: 21}, 0.5, 1.5, 96)
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB []traffic.Packet
	var snapA, snapB Snapshot
	for s := 0; s < 300; s++ {
		bufA = genSeq.Generate(s, bufA[:0])
		bufB = genDist.Generate(s, bufB[:0])
		if err := seq.RunSlot(bufA); err != nil {
			t.Fatal(err)
		}
		if err := dist.RunSlot(bufB); err != nil {
			t.Fatal(err)
		}
		if s%25 == 0 {
			seq.Snapshot(&snapA)
			dist.Snapshot(&snapB)
			if msg := snapA.Diff(&snapB); msg != "" {
				t.Fatalf("slot %d: engines diverged: %s", s, msg)
			}
		}
	}
	seq.Finalize()
	dist.Finalize()
}

// TestLastGrantsLedger accumulates LastGrants over a run and reconciles
// the ledger against the final statistics.
func TestLastGrantsLedger(t *testing.T) {
	conv, err := wavelength.New(wavelength.Circular, 6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := New(Config{N: 5, Conv: conv, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := traffic.NewBernoulli(traffic.Config{N: 5, K: 6, Seed: 9, Hold: traffic.HoldingTime{Mean: 2}}, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	var buf []traffic.Packet
	var grants []SlotGrant
	total := int64(0)
	perInput := make([]int64, 5)
	for s := 0; s < 500; s++ {
		buf = gen.Generate(s, buf[:0])
		if err := sw.RunSlot(buf); err != nil {
			t.Fatal(err)
		}
		grants = sw.LastGrants(grants[:0])
		for _, g := range grants {
			if g.Held {
				t.Fatalf("held grant without disturb mode: %+v", g)
			}
			if g.InputFiber < 0 || g.InputFiber >= 5 || g.OutputFiber < 0 || g.OutputFiber >= 5 ||
				g.Wavelength < 0 || g.Wavelength >= 6 || g.Channel < 0 || g.Channel >= 6 || g.Duration < 1 {
				t.Fatalf("malformed grant %+v", g)
			}
			total++
			perInput[g.InputFiber]++
		}
	}
	stats := sw.Finalize()
	if total != stats.Granted.Value() {
		t.Fatalf("ledger grants %d != stats granted %d", total, stats.Granted.Value())
	}
	for f, g := range perInput {
		if g != stats.PerInputGranted[f] {
			t.Fatalf("ledger per-input[%d] %d != stats %d", f, g, stats.PerInputGranted[f])
		}
	}
	if total == 0 {
		t.Fatal("degenerate run: no grants")
	}
}

// TestRunBulkMakespan runs an open-shop bulk transfer through the real
// fabric and checks delivery completeness, the analytic lower bound, and
// cross-engine makespan equality.
func TestRunBulkMakespan(t *testing.T) {
	const (
		n = 6
		k = 4
	)
	demand := traffic.RandomDemand(n, 300, 13)
	lb, err := analysis.OpenShopMakespanLB(demand, k)
	if err != nil {
		t.Fatal(err)
	}
	if lb <= 0 {
		t.Fatalf("lower bound %d not positive", lb)
	}
	run := func(distributed bool) (int, *Stats) {
		conv, err := wavelength.New(wavelength.Circular, k, k/2, k/2-1) // full range: d = k
		if err != nil {
			t.Fatal(err)
		}
		bulk, err := traffic.NewBulkTransfer(traffic.Config{N: n, K: k, Seed: 1}, demand)
		if err != nil {
			t.Fatal(err)
		}
		sw, err := New(Config{N: n, Conv: conv, Seed: 4, Distributed: distributed})
		if err != nil {
			t.Fatal(err)
		}
		makespan, stats, err := RunBulk(sw, bulk, 100000)
		if err != nil {
			t.Fatal(err)
		}
		if !bulk.Done() {
			t.Fatal("RunBulk returned before the workload drained")
		}
		return makespan, stats
	}
	msSeq, statsSeq := run(false)
	msDist, _ := run(true)
	if msSeq != msDist {
		t.Fatalf("makespan differs across engines: sequential %d, distributed %d", msSeq, msDist)
	}
	if msSeq < lb {
		t.Fatalf("makespan %d beats the open-shop lower bound %d", msSeq, lb)
	}
	if msSeq > 6*lb {
		t.Errorf("makespan %d more than 6× the lower bound %d — scheduler or feedback loop broken", msSeq, lb)
	}
	if statsSeq.Granted.Value() != 300 {
		t.Fatalf("granted %d units, want 300", statsSeq.Granted.Value())
	}
}

// TestRunBulkMaxSlots checks the runaway bound surfaces as an error.
func TestRunBulkMaxSlots(t *testing.T) {
	conv, err := wavelength.New(wavelength.Circular, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	bulk, err := traffic.NewBulkTransfer(traffic.Config{N: 2, K: 2, Seed: 1}, [][]int{{50, 0}, {0, 50}})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := New(Config{N: 2, Conv: conv, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunBulk(sw, bulk, 3); err == nil {
		t.Fatal("maxSlots exhaustion not reported")
	}
}
