package interconnect

import (
	"runtime"
	"testing"
	"time"

	"wdmsched/internal/traffic"
	"wdmsched/internal/wavelength"
)

// prerecord builds a fixed per-slot packet schedule so alloc tests can
// drive RunSlot without generator allocations inside the measured region.
func prerecord(t testing.TB, n, k, slots int, load float64, seed uint64) [][]traffic.Packet {
	t.Helper()
	gen, err := traffic.NewBernoulli(traffic.Config{N: n, K: k, Seed: seed}, load)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]traffic.Packet, slots)
	for s := range out {
		out[s] = gen.Generate(s, nil)
	}
	return out
}

// TestRunSlotNoAllocsSteadyState is the engine's core guarantee: after
// warm-up, a slot costs zero heap allocations in both execution modes —
// the per-slot result-buffer make and the goroutine-per-port spawn were
// the two defects the persistent engine removes.
func TestRunSlotNoAllocsSteadyState(t *testing.T) {
	for _, mode := range []struct {
		name        string
		distributed bool
	}{{"sequential", false}, {"distributed", true}} {
		t.Run(mode.name, func(t *testing.T) {
			const n, k = 8, 16
			sw := mustSwitch(t, Config{
				N: n, Conv: circ(k, 1, 1), Seed: 5, Distributed: mode.distributed,
			})
			slots := prerecord(t, n, k, 64, 1.0, 9)
			for pass := 0; pass < 4; pass++ { // grow all scratch to steady state
				for _, pkts := range slots {
					if err := sw.RunSlot(pkts); err != nil {
						t.Fatal(err)
					}
				}
			}
			i := 0
			allocs := testing.AllocsPerRun(200, func() {
				if err := sw.RunSlot(slots[i%len(slots)]); err != nil {
					t.Fatal(err)
				}
				i++
			})
			sw.Finalize()
			if allocs != 0 {
				t.Errorf("steady-state RunSlot allocates %v per slot, want 0", allocs)
			}
		})
	}
}

// TestEngineStatsPopulated checks the run-time metrics layer end to end:
// slot latency histogram, per-port busy accounting, and the sampled
// allocations-per-slot gauge.
func TestEngineStatsPopulated(t *testing.T) {
	for _, distributed := range []bool{false, true} {
		const n, k, slots = 4, 8, 100
		sw := mustSwitch(t, Config{N: n, Conv: circ(k, 1, 1), Seed: 3, Distributed: distributed})
		gen, err := traffic.NewBernoulli(traffic.Config{N: n, K: k, Seed: 7}, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sw.Run(gen, slots)
		if err != nil {
			t.Fatal(err)
		}
		es := st.Engine
		if es == nil {
			t.Fatal("Stats.Engine not populated")
		}
		if es.Distributed != distributed {
			t.Fatalf("Engine.Distributed = %v, want %v", es.Distributed, distributed)
		}
		if es.SlotLatency.Count() != slots {
			t.Fatalf("slot latency count = %d, want %d", es.SlotLatency.Count(), slots)
		}
		if es.SlotLatency.Sum() <= 0 {
			t.Fatal("slot latency sum must be positive")
		}
		if len(es.PortBusy) != n {
			t.Fatalf("PortBusy has %d entries, want %d", len(es.PortBusy), n)
		}
		var busy time.Duration
		for o := range es.PortBusy {
			busy += es.PortBusy[o]
			if f := es.PortBusyFraction(o); f < 0 {
				t.Fatalf("port %d busy fraction %v < 0", o, f)
			}
		}
		if busy <= 0 {
			t.Fatal("no port busy time recorded")
		}
		if es.Speedup() <= 0 {
			t.Fatalf("speedup = %v, want > 0", es.Speedup())
		}
		if es.MemSamples < 1 || !es.AllocsPerSlot.Valid() {
			t.Fatalf("allocation gauge not sampled: samples=%d valid=%v",
				es.MemSamples, es.AllocsPerSlot.Valid())
		}
		if es.AllocsPerSlot.Value() < 0 {
			t.Fatalf("allocs/slot = %v", es.AllocsPerSlot.Value())
		}
	}
}

// TestFinalizeStopsWorkers: the persistent port workers must exit at
// Finalize — a finalized distributed switch leaves no goroutines behind.
func TestFinalizeStopsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	sw := mustSwitch(t, Config{N: 16, Conv: circ(8, 1, 1), Seed: 1, Distributed: true})
	gen, err := traffic.NewBernoulli(traffic.Config{N: 16, K: 8, Seed: 2}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Run(gen, 20); err != nil {
		t.Fatal(err)
	}
	// Run (via Finalize) must have joined all 16 workers synchronously.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("goroutines after Finalize: %d, baseline %d — workers leaked", got, before)
	}
}

// TestDistributedParallelSchedulerStack: the worker-pool engine composed
// with the worker-pool scheduler (N port workers each fanning out to d
// breaker workers) must still match the sequential exact run, and
// Finalize must close the schedulers' pools.
func TestDistributedParallelSchedulerStack(t *testing.T) {
	run := func(distributed bool, sched string) *Stats {
		sw := mustSwitch(t, Config{
			N: 4, Conv: circ(8, 2, 1), Seed: 11,
			Scheduler: sched, Distributed: distributed,
		})
		gen, err := traffic.NewBernoulli(traffic.Config{N: 4, K: 8, Seed: 13}, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sw.Run(gen, 150)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	seq := run(false, "break-first-available")
	par := run(true, "parallel-break-first-available")
	if seq.Granted.Value() != par.Granted.Value() ||
		seq.OutputDropped.Value() != par.OutputDropped.Value() {
		t.Fatalf("parallel stack diverged: %d/%d vs %d/%d",
			seq.Granted.Value(), seq.OutputDropped.Value(),
			par.Granted.Value(), par.OutputDropped.Value())
	}
}

// FuzzSeqDistStatsEquivalence is the distributed-claim differential: for
// arbitrary shapes, seeds, loads, holding times, and disturb modes, the
// sequential loop and the persistent worker pool must produce identical
// statistics — counters, per-input grants, per-channel busy slots, and the
// match-size histogram. The word-parallel kernel ("fast") rides the same
// differential: it must match the scalar exact scheduler's statistics
// through either engine, which only holds if its per-slot Results are
// byte-identical.
func FuzzSeqDistStatsEquivalence(f *testing.F) {
	f.Add(uint8(4), uint8(6), uint8(1), uint8(1), uint64(7), uint8(80), uint8(0), false)
	f.Add(uint8(8), uint8(8), uint8(2), uint8(3), uint64(42), uint8(100), uint8(3), false)
	f.Add(uint8(6), uint8(5), uint8(0), uint8(2), uint64(99), uint8(50), uint8(2), true)
	f.Fuzz(func(t *testing.T, n8, k8, e8, f8 uint8, seed uint64, load8, hold8 uint8, disturb bool) {
		n := int(n8)%8 + 1
		k := int(k8)%8 + 1
		e := int(e8) % k
		ff := int(f8) % (k - e)
		load := float64(load8%101) / 100
		var hold traffic.HoldingTime
		if hold8%4 > 0 {
			hold = traffic.HoldingTime{Mean: float64(hold8%4) + 1}
		}
		conv, err := wavelength.New(wavelength.Circular, k, e, ff)
		if err != nil {
			t.Fatalf("decoded invalid conversion: %v", err)
		}
		run := func(distributed bool, sched string) *Stats {
			sw, err := New(Config{
				N: n, Conv: conv, Seed: seed, Scheduler: sched,
				Disturb: disturb, Distributed: distributed,
			})
			if err != nil {
				t.Fatal(err)
			}
			gen, err := traffic.NewBernoulli(traffic.Config{N: n, K: k, Seed: seed + 1, Hold: hold}, load)
			if err != nil {
				t.Fatal(err)
			}
			st, err := sw.Run(gen, 60)
			if err != nil {
				t.Fatal(err)
			}
			return st
		}
		a := run(false, "")
		for _, leg := range []struct {
			name string
			b    *Stats
		}{
			{"dist/exact", run(true, "")},
			{"seq/fast", run(false, "fast")},
			{"dist/fast", run(true, "fast")},
		} {
			b := leg.b
			if a.Offered.Value() != b.Offered.Value() ||
				a.Granted.Value() != b.Granted.Value() ||
				a.InputBlocked.Value() != b.InputBlocked.Value() ||
				a.OutputDropped.Value() != b.OutputDropped.Value() ||
				a.Preempted.Value() != b.Preempted.Value() ||
				a.BusyChannelSlots.Value() != b.BusyChannelSlots.Value() {
				t.Fatalf("counters diverged: seq/exact {o=%d g=%d ib=%d od=%d p=%d bs=%d} vs %s {o=%d g=%d ib=%d od=%d p=%d bs=%d}",
					a.Offered.Value(), a.Granted.Value(), a.InputBlocked.Value(),
					a.OutputDropped.Value(), a.Preempted.Value(), a.BusyChannelSlots.Value(),
					leg.name,
					b.Offered.Value(), b.Granted.Value(), b.InputBlocked.Value(),
					b.OutputDropped.Value(), b.Preempted.Value(), b.BusyChannelSlots.Value())
			}
			for f := range a.PerInputGranted {
				if a.PerInputGranted[f] != b.PerInputGranted[f] {
					t.Fatalf("%s: per-input grants diverged at fiber %d: %d vs %d",
						leg.name, f, a.PerInputGranted[f], b.PerInputGranted[f])
				}
			}
			for c := range a.PerChannelBusy {
				if a.PerChannelBusy[c] != b.PerChannelBusy[c] {
					t.Fatalf("%s: per-channel busy diverged at channel %d: %d vs %d",
						leg.name, c, a.PerChannelBusy[c], b.PerChannelBusy[c])
				}
			}
			for v := 0; v <= k; v++ {
				if a.MatchSizes.Bucket(v) != b.MatchSizes.Bucket(v) {
					t.Fatalf("%s: match-size histogram diverged at %d: %d vs %d",
						leg.name, v, a.MatchSizes.Bucket(v), b.MatchSizes.Bucket(v))
				}
			}
		}
	})
}
