package interconnect

import (
	"fmt"

	"wdmsched/internal/traffic"
)

// RunBulk drives the switch closed-loop over an open-shop bulk-transfer
// workload until every unit is delivered: each slot the generator offers
// pending transfers, the switch schedules them, and every grant is fed
// back to the workload as a delivery. It returns the makespan (slots
// until the last delivery) and the finalized statistics; maxSlots bounds
// runaway workloads (an error is returned when it is hit first).
//
// The schedule, and hence the makespan, is a deterministic function of
// the demand matrix, the scheduler, and the seed — identical across the
// sequential, distributed and cluster engines — so makespan doubles as a
// cross-engine soak invariant.
func RunBulk(s *Switch, bulk *traffic.BulkTransfer, maxSlots int) (makespan int, stats *Stats, err error) {
	var (
		buf    []traffic.Packet
		grants []SlotGrant
	)
	slot := 0
	for ; !bulk.Done(); slot++ {
		if slot >= maxSlots {
			s.Finalize()
			return 0, nil, fmt.Errorf("interconnect: bulk transfer incomplete after %d slots (%d units left)",
				maxSlots, bulk.Remaining())
		}
		buf = bulk.Generate(slot, buf[:0])
		if err := s.RunSlot(buf); err != nil {
			return 0, nil, err
		}
		grants = s.LastGrants(grants[:0])
		for _, g := range grants {
			if err := bulk.Deliver(g.InputFiber, g.OutputFiber); err != nil {
				return 0, nil, err
			}
		}
	}
	return slot, s.Finalize(), nil
}
