package interconnect

import (
	"sync/atomic"
	"time"

	"wdmsched/internal/metrics"
)

// EngineStats reports the run-time behavior of the slot engine itself, as
// opposed to the traffic-level quantities in Stats: how long the per-slot
// scheduling phase takes, how the work spreads across ports, and whether
// the hot path stays allocation-free. It is populated continuously during
// the run and safe to read after Finalize.
type EngineStats struct {
	// Distributed records which execution backend produced the run:
	// the persistent worker pool (true) or the sequential port loop.
	Distributed bool

	// SlotLatency is the distribution of per-slot scheduling-phase wall
	// time: from handing the admitted arrivals to the ports until every
	// port has produced its grants.
	SlotLatency *metrics.DurationHistogram

	// PortBusy is the cumulative time each output port spent inside its
	// scheduler this run, settled at Finalize (live telemetry reads the
	// underlying atomic accumulators instead). In distributed mode the
	// sum over ports can exceed SlotLatency.Sum(): that surplus is
	// exactly the parallel speedup of the worker pool. Idle time of a
	// port is SlotLatency.Sum() − PortBusy[o].
	PortBusy []time.Duration

	// AllocsPerSlot is the most recent sampled heap-allocation rate of
	// the whole process, in mallocs per simulated slot, from periodic
	// runtime.ReadMemStats deltas. It is process-global (traffic
	// generation and harness allocations count too), so treat it as an
	// upper bound on the engine's own allocation rate; in steady state it
	// should approach zero.
	AllocsPerSlot metrics.Gauge

	// MemSamples counts the runtime.ReadMemStats samples behind
	// AllocsPerSlot. Updated atomically so telemetry can read it live.
	MemSamples int64

	// busyNS is the live per-port busy-time accumulation in nanoseconds,
	// written atomically by the engine workers (or the sequential loop)
	// and copied into PortBusy when the run settles.
	busyNS []int64
}

func newEngineStats(n int, distributed bool) *EngineStats {
	return &EngineStats{
		Distributed: distributed,
		SlotLatency: metrics.NewDurationHistogram(),
		PortBusy:    make([]time.Duration, n),
		busyNS:      make([]int64, n),
	}
}

// addBusy accumulates scheduling time for port o (any goroutine).
func (e *EngineStats) addBusy(o int, d time.Duration) {
	atomic.AddInt64(&e.busyNS[o], int64(d))
}

// busy returns port o's live cumulative busy time.
func (e *EngineStats) busy(o int) time.Duration {
	return time.Duration(atomic.LoadInt64(&e.busyNS[o]))
}

// settle copies the live accumulators into the public PortBusy view;
// called by Finalize after the workers have stopped.
func (e *EngineStats) settle() {
	for o := range e.busyNS {
		e.PortBusy[o] = e.busy(o)
	}
}

// PortBusyFraction returns the fraction of the run's scheduling wall time
// port o spent scheduling (0 when nothing ran yet).
func (e *EngineStats) PortBusyFraction(o int) float64 {
	wall := e.SlotLatency.Sum()
	if wall <= 0 || o < 0 || o >= len(e.PortBusy) {
		return 0
	}
	return float64(e.PortBusy[o]) / float64(wall)
}

// Speedup returns the ratio of total port scheduling time to scheduling
// wall time — the effective parallelism of the engine (≤ 1 for the
// sequential backend up to timer overhead, up to N for the worker pool).
func (e *EngineStats) Speedup() float64 {
	wall := e.SlotLatency.Sum()
	if wall <= 0 {
		return 0
	}
	var busy time.Duration
	for _, b := range e.PortBusy {
		busy += b
	}
	return float64(busy) / float64(wall)
}
