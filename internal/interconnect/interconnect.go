// Package interconnect simulates the paper's N×N time-slotted WDM optical
// interconnect end to end: slot-aligned packet arrivals are partitioned by
// destination fiber, each output fiber's scheduler resolves contention
// independently (the paper's distributed scheduling argument, Section I),
// winners are selected fairly among same-wavelength requests, channel
// holds for multi-slot connections (Section V) are tracked, and physical
// feasibility can be checked against the Fig. 1 datapath model.
//
// The simulator runs in two modes producing identical results: sequential
// (one loop over output ports, for benchmarking algorithm cost) and
// distributed (a persistent worker pool with one long-lived goroutine per
// output port, woken every slot, demonstrating that the per-fiber
// schedulers share no state). Both modes reuse all per-slot scratch, so
// RunSlot is allocation-free in steady state; engine run-time metrics
// (slot scheduling latency, per-port busy time, sampled allocations per
// slot) are reported through Stats.Engine.
package interconnect

import (
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"

	"wdmsched/internal/core"
	"wdmsched/internal/fabric"
	"wdmsched/internal/fault"
	"wdmsched/internal/telemetry"
	"wdmsched/internal/traffic"
	"wdmsched/internal/wavelength"
)

// Config describes an interconnect simulation.
type Config struct {
	// N is the number of input and output fibers.
	N int
	// Conv is the output-side wavelength conversion model.
	Conv wavelength.Conversion
	// Scheduler names the per-port scheduling algorithm (core.NewByName);
	// empty means "exact".
	Scheduler string
	// Selector names the same-wavelength tie-break: "round-robin"
	// (default) or "random".
	Selector string
	// Seed drives the random selector streams.
	Seed uint64
	// Disturb enables Section V disturb-mode rescheduling of held
	// multi-slot connections.
	Disturb bool
	// Distributed schedules ports on a persistent worker pool: one
	// long-lived goroutine per output port, started at New and shut down
	// at Finalize.
	Distributed bool
	// ValidateFabric routes every slot's grants through the Fig. 1
	// datapath model and fails on physical infeasibility (slower;
	// intended for tests and spot checks).
	ValidateFabric bool
	// PriorityClasses > 1 enables strict-priority QoS scheduling (the
	// paper's Section VI future work): packets carry a Priority class and
	// each port schedules classes in descending priority with the exact
	// algorithm. Incompatible with Disturb and with a non-exact
	// Scheduler.
	PriorityClasses int
	// Faults injects a deterministic fault schedule (converter failures,
	// dark channels, port flaps): each slot the injector is advanced and
	// every port schedules against its channel-state mask, with degraded-
	// mode statistics reported through Stats.Fault. Nil disables fault
	// injection entirely.
	Faults fault.Injector
	// Telemetry, when non-nil, registers every run statistic (traffic
	// counters, engine run-time metrics, fault exposure) with the given
	// registry under wdm_* names so a telemetry.Server can expose them
	// live. Nil skips registration entirely.
	Telemetry *telemetry.Registry
	// Trace, when non-nil, records per-slot scheduling decisions
	// (grants, rejects with reason, preemptions, BFA break edges, port
	// slot latency) into the tracer's per-port ring buffers. The tracer
	// must have been built with NewDecisionTracer(N, …). Nil disables
	// tracing; the disabled path is allocation-free.
	Trace *telemetry.DecisionTracer
	// Recorder, when non-nil, attaches an always-on flight recorder: the
	// switch adopts the recorder's decision tracer as its Trace sink
	// (setting both to different tracers is an error — the events would
	// be recorded twice), takes a counter Snapshot into the recorder's
	// ring every Recorder.SnapshotEvery() slots, and records every
	// fault-mask transition (channel state changes, not per-slot state)
	// when Faults is set. Recording is allocation-free on the slot path.
	Recorder *telemetry.FlightRecorder
	// Remote, when non-nil, delegates every slot's scheduling decisions
	// to a batch scheduler running elsewhere — the cluster controller in
	// internal/cluster, which shards the per-port schedulers across
	// worker nodes over a real transport. The switch still performs input
	// admission, fault masking, fair selection and hold bookkeeping
	// locally; only the paper's per-fiber matching computation moves off
	// the switch. With the same seed and trace, a remote run's Stats are
	// identical to the sequential and distributed engines'. Mutually
	// exclusive with Distributed and PriorityClasses > 1.
	Remote BatchScheduler
}

// arrival is a packet after input admission, as seen by an output port.
type arrival struct {
	fiber    int
	wave     int
	duration int
	class    int
}

// Switch is a running interconnect simulation.
type Switch struct {
	cfg   Config
	k     int
	ports []*outputPort
	dp    *fabric.Datapath
	stats *Stats

	// inputHold[(i·k)+w] > 0 means input channel (i, λw) is still
	// transmitting an earlier multi-slot connection and cannot carry a
	// new packet (input admission). inputHoldLive counts the positive
	// entries so an all-idle sweep can be skipped.
	inputHold     []int
	inputHoldLive int

	// Per-slot scratch, reused across slots so steady-state RunSlot does
	// not allocate. The outer slices are fixed-length and never
	// reallocated: the engine workers index into them directly.
	perPort    [][]arrival
	results    [][]portGrant
	slotGrants []fabric.Grant
	merged     bool

	// slotsDone mirrors stats.Slots atomically so live telemetry can
	// read the slot count while RunSlot is advancing it.
	slotsDone atomic.Int64

	// eng is the persistent worker pool in distributed mode (nil in
	// sequential mode).
	eng *engine

	// Batch scratch for remote (cluster) mode, reused every slot.
	batchReqs []BatchRequest
	batchOut  []BatchResult
	// remoteSpans is the batch scheduler's span tracer (SpanSource), when
	// tracing is on: the slot loop emits prepare/commit/slot spans on
	// lane 0 so they interleave with the controller's per-link RPC spans.
	remoteSpans *telemetry.SpanTracer

	// Flight-recorder state: rec mirrors cfg.Recorder, recPrevMask holds
	// the last observed channel states (N·k, faulted runs only) so mask
	// transitions are recorded as edges, and recScratch is the reused
	// Snapshot buffer for cadenced counter snapshots.
	rec         *telemetry.FlightRecorder
	recPrevMask []core.ChannelState
	recScratch  Snapshot

	// Allocation-rate sampling state for Stats.Engine.AllocsPerSlot.
	memStats      runtime.MemStats
	lastMallocs   uint64
	lastAllocSlot int
}

// memSampleEvery is the slot period of runtime.ReadMemStats sampling for
// the allocations-per-slot gauge. Sampling stops the world briefly, so it
// runs two orders of magnitude less often than slots tick.
const memSampleEvery = 64

// New builds a switch from the configuration.
func New(cfg Config) (*Switch, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("interconnect: invalid N=%d", cfg.N)
	}
	k := cfg.Conv.K()
	schedName := cfg.Scheduler
	if schedName == "" {
		schedName = "exact"
	}
	if cfg.PriorityClasses > 1 {
		if cfg.Disturb {
			return nil, fmt.Errorf("interconnect: priority classes and disturb mode are mutually exclusive")
		}
		if schedName != "exact" {
			return nil, fmt.Errorf("interconnect: priority classes require the exact scheduler, have %q", schedName)
		}
	}
	selName := cfg.Selector
	if selName == "" {
		selName = "round-robin"
	}
	if cfg.Recorder != nil {
		if cfg.Trace == nil {
			cfg.Trace = cfg.Recorder.Decisions()
		} else if cfg.Trace != cfg.Recorder.Decisions() {
			return nil, fmt.Errorf("interconnect: Trace and Recorder carry different decision tracers; use the recorder's (Recorder.Decisions()) or drop Trace")
		}
	}
	if cfg.Trace != nil && cfg.Trace.Ports() != cfg.N {
		return nil, fmt.Errorf("interconnect: tracer built for %d ports, switch has %d",
			cfg.Trace.Ports(), cfg.N)
	}
	if cfg.Remote != nil {
		if cfg.Distributed {
			return nil, fmt.Errorf("interconnect: remote and distributed modes are mutually exclusive")
		}
		if cfg.PriorityClasses > 1 {
			return nil, fmt.Errorf("interconnect: remote mode does not support priority classes")
		}
	}
	dp, err := fabric.NewDatapath(cfg.N, cfg.Conv)
	if err != nil {
		return nil, err
	}
	sw := &Switch{
		cfg:       cfg,
		k:         k,
		dp:        dp,
		stats:     newStats(cfg.N, k, cfg.PriorityClasses),
		inputHold: make([]int, cfg.N*k),
		perPort:   make([][]arrival, cfg.N),
		results:   make([][]portGrant, cfg.N),
	}
	sw.stats.Engine = newEngineStats(cfg.N, cfg.Distributed)
	if cfg.Faults != nil {
		sw.stats.Fault = newFaultStats(cfg.N, k)
	}
	rng := traffic.NewRNG(cfg.Seed)
	for o := 0; o < cfg.N; o++ {
		sched, err := core.NewByName(schedName, cfg.Conv)
		if err != nil {
			return nil, err
		}
		var sel fabric.Selector
		switch selName {
		case "round-robin":
			sel = fabric.NewRoundRobin(k)
		case "random":
			sel = fabric.NewRandom(rng.Uint64())
		case "fixed-priority":
			// Unfair baseline for the S7 ablation.
			sel = fabric.NewFixedPriority()
		default:
			return nil, fmt.Errorf("interconnect: unknown selector %q", selName)
		}
		port := newOutputPort(o, cfg.N, k, cfg.Conv, sched, sel, cfg.Disturb)
		port.tracer = cfg.Trace
		if cfg.PriorityClasses > 1 {
			prio, err := core.NewPriorityScheduler(cfg.Conv)
			if err != nil {
				return nil, err
			}
			port.enableClasses(cfg.PriorityClasses, prio)
		}
		sw.ports = append(sw.ports, port)
	}
	if cfg.Remote != nil {
		sw.batchReqs = make([]BatchRequest, 0, cfg.N)
		sw.batchOut = make([]BatchResult, 0, cfg.N)
		if src, ok := cfg.Remote.(ClusterStatsSource); ok {
			sw.stats.Cluster = src.ClusterStats()
		}
		if src, ok := cfg.Remote.(SpanSource); ok {
			if tr := src.Spans(); tr != nil {
				tr.EnsureLanes(1)
				sw.remoteSpans = tr
			}
		}
	}
	if cfg.Distributed {
		sw.eng = newEngine(sw.ports, sw.perPort, sw.results, sw.stats.Engine)
		// Leak backstop: if the switch is dropped without Finalize, stop
		// the worker pool when the switch becomes unreachable. The
		// cleanup must not reference sw itself (the engine does not point
		// back at the switch, so sw stays collectible).
		runtime.AddCleanup(sw, func(e *engine) { e.shutdown() }, sw.eng)
	}
	if cfg.Recorder != nil {
		sw.rec = cfg.Recorder
		sw.rec.EnsureShape(cfg.N, k)
		// Pre-size the scratch snapshot so cadenced recording never
		// allocates on the slot path.
		sw.recScratch.PerInput = make([]int64, cfg.N)
		sw.recScratch.PerChannel = make([]int64, k)
		if cfg.Faults != nil {
			sw.recPrevMask = make([]core.ChannelState, cfg.N*k)
		}
	}
	runtime.ReadMemStats(&sw.memStats)
	sw.lastMallocs = sw.memStats.Mallocs
	if cfg.Telemetry != nil {
		sw.registerTelemetry(cfg.Telemetry)
	}
	return sw, nil
}

// sampleAllocs refreshes the allocations-per-slot gauge from a
// runtime.ReadMemStats delta over the slots since the previous sample.
func (s *Switch) sampleAllocs() {
	slots := s.stats.Slots - s.lastAllocSlot
	if slots <= 0 {
		return
	}
	runtime.ReadMemStats(&s.memStats)
	d := s.memStats.Mallocs - s.lastMallocs
	s.stats.Engine.AllocsPerSlot.Set(float64(d) / float64(slots))
	atomic.AddInt64(&s.stats.Engine.MemSamples, 1)
	s.lastMallocs = s.memStats.Mallocs
	s.lastAllocSlot = s.stats.Slots
}

// K returns the wavelengths per fiber.
func (s *Switch) K() int { return s.k }

// N returns the fibers per side.
func (s *Switch) N() int { return s.cfg.N }

// RunSlot advances the simulation by one slot with the given arrivals.
// Packets outside the interconnect's shape or with non-positive duration
// are rejected with an error.
func (s *Switch) RunSlot(packets []traffic.Packet) error {
	if s.merged {
		return fmt.Errorf("interconnect: switch already finalized")
	}
	n, k := s.cfg.N, s.k
	slot := int64(s.stats.Slots)
	for o := range s.perPort {
		s.perPort[o] = s.perPort[o][:0]
		s.ports[o].slot = slot
	}
	// Input admission: a channel still transmitting an earlier
	// connection cannot launch a new packet.
	for _, p := range packets {
		if p.InputFiber < 0 || p.InputFiber >= n || p.DestFiber < 0 || p.DestFiber >= n ||
			p.Wavelength < 0 || p.Wavelength >= k {
			return fmt.Errorf("interconnect: packet out of shape: %+v", p)
		}
		if p.Duration < 1 {
			return fmt.Errorf("interconnect: non-positive duration: %+v", p)
		}
		if s.inputHold[p.InputFiber*k+p.Wavelength] > 0 {
			s.stats.Offered.Inc()
			s.stats.InputBlocked.Inc()
			if t := s.cfg.Trace; t != nil {
				t.Emit(t.SwitchLane(), telemetry.Event{
					Slot: slot, Lane: int32(t.SwitchLane()),
					Kind: telemetry.EvReject, Reason: telemetry.ReasonInputBlocked,
					Fiber: int32(p.InputFiber), Wave: int32(p.Wavelength),
					Channel: -1,
				})
			}
			continue
		}
		s.perPort[p.DestFiber] = append(s.perPort[p.DestFiber], arrival{
			fiber: p.InputFiber, wave: p.Wavelength, duration: p.Duration,
			class: p.Priority,
		})
	}

	// Fault phase: advance the injector to this slot and hand every port
	// its channel-state mask before the fan-out (the wake-channel send, or
	// the sequential call, orders these writes before the port reads
	// them). Exposure statistics are tallied here, on the switch
	// goroutine, so ports never contend on shared counters.
	if s.cfg.Faults != nil {
		s.cfg.Faults.Advance(s.stats.Slots)
		fs := s.stats.Fault
		healthy := 0
		for o, p := range s.ports {
			m := s.cfg.Faults.Mask(o)
			p.mask = m
			if s.recPrevMask != nil {
				s.recordMaskTransitions(slot, o, m)
			}
			if m == nil {
				healthy += k
				continue
			}
			for _, st := range m {
				switch st {
				case core.Healthy:
					healthy++
				case core.ConverterFailed:
					fs.ConverterFailedChannelSlots.Inc()
				case core.Dark:
					fs.DarkChannelSlots.Inc()
				}
			}
		}
		fs.HealthyChannels.Observe(healthy)
		if broken := n*k - healthy; broken > 0 {
			fs.DegradedSlots.Inc()
			fs.DegradedChannelSlots.Add(int64(broken))
		}
	}

	// Distributed phase: each output port schedules independently — on
	// the persistent worker pool or in the sequential loop, into the
	// switch's reused result buffers either way.
	es := s.stats.Engine
	start := time.Now()
	if s.cfg.Remote != nil {
		if err := s.runSlotRemote(slot); err != nil {
			return err
		}
	} else if s.eng != nil {
		s.eng.runSlot()
	} else {
		t0 := start
		for o := 0; o < n; o++ {
			s.results[o] = s.ports[o].runSlot(s.perPort[o])
			t1 := time.Now()
			d := t1.Sub(t0)
			t0 = t1
			es.addBusy(o, d)
			if t := s.cfg.Trace; t != nil {
				t.Emit(o, telemetry.Event{
					Slot: slot, Lane: int32(o), Kind: telemetry.EvSlotLatency,
					Fiber: -1, Wave: -1, Channel: -1, Value: int64(d),
				})
			}
		}
	}
	es.SlotLatency.Observe(time.Since(start))

	// Age the input holds of earlier slots before recording this slot's:
	// a fresh grant of duration d leaves d-1 slots of hold after the
	// current one, so recording d-1 now is the one pass that both sweeps
	// (set all, then age all) amounted to — and lets a switch with no
	// live holds skip the O(Nk) sweep entirely.
	if s.inputHoldLive > 0 {
		for i := range s.inputHold {
			if s.inputHold[i] > 0 {
				s.inputHold[i]--
				if s.inputHold[i] == 0 {
					s.inputHoldLive--
				}
			}
		}
	}

	// Input-hold bookkeeping and (optionally) datapath validation.
	s.slotGrants = s.slotGrants[:0]
	for o, grants := range s.results {
		for _, g := range grants {
			if !g.held {
				if d := g.duration - 1; d > 0 {
					s.inputHold[g.fiber*k+g.wave] = d
					s.inputHoldLive++
				}
			}
			if s.cfg.ValidateFabric {
				s.slotGrants = append(s.slotGrants, fabric.Grant{
					InputFiber:      g.fiber,
					InputWavelength: g.wave,
					OutputFiber:     o,
					OutputChannel:   g.channel,
				})
			}
		}
		// Disturb-mode preemption aborts the in-flight transmission and
		// frees its input channel immediately.
		for _, pre := range s.ports[o].preemptees {
			if idx := pre.fiber*k + pre.wave; s.inputHold[idx] > 0 {
				s.inputHold[idx] = 0
				s.inputHoldLive--
			}
		}
	}
	if s.cfg.ValidateFabric {
		if err := s.dp.Route(s.slotGrants); err != nil {
			return fmt.Errorf("interconnect: slot physically infeasible: %w", err)
		}
	}
	s.stats.Slots++
	s.slotsDone.Store(int64(s.stats.Slots))
	if s.rec != nil && int64(s.stats.Slots)%s.rec.SnapshotEvery() == 0 {
		s.recordSnapshot()
	}
	if s.stats.Slots-s.lastAllocSlot >= memSampleEvery {
		s.sampleAllocs()
	}
	return nil
}

// recordMaskTransitions diffs port o's new channel-state mask against the
// last recorded states and appends one FaultTransition per changed
// channel to the flight recorder. A nil mask means all-healthy. Runs on
// the switch goroutine during the fault phase; allocation-free.
func (s *Switch) recordMaskTransitions(slot int64, o int, m []core.ChannelState) {
	base := o * s.k
	if m == nil {
		for c := 0; c < s.k; c++ {
			if prev := s.recPrevMask[base+c]; prev != core.Healthy {
				s.rec.RecordFaultTransition(telemetry.FaultTransition{
					Slot: slot, Port: int32(o), Channel: int32(c),
					From: uint8(prev), To: uint8(core.Healthy),
				})
				s.recPrevMask[base+c] = core.Healthy
			}
		}
		return
	}
	for c, st := range m {
		if prev := s.recPrevMask[base+c]; prev != st {
			s.rec.RecordFaultTransition(telemetry.FaultTransition{
				Slot: slot, Port: int32(o), Channel: int32(c),
				From: uint8(prev), To: uint8(st),
			})
			s.recPrevMask[base+c] = st
		}
	}
}

// recordSnapshot copies the switch's current cumulative counters into the
// flight recorder's snapshot ring. Runs between slots on the slot-driving
// goroutine; allocation-free (both the scratch Snapshot and the ring
// entry's slices are pre-sized).
func (s *Switch) recordSnapshot() {
	s.Snapshot(&s.recScratch)
	rec := s.rec.BeginSnapshot()
	rec.Slot = s.recScratch.Slots
	rec.Offered = s.recScratch.Offered
	rec.Granted = s.recScratch.Granted
	rec.InputBlocked = s.recScratch.InputBlocked
	rec.OutputDropped = s.recScratch.OutputDropped
	rec.Preempted = s.recScratch.Preempted
	rec.BusyChannelSlots = s.recScratch.BusyChannelSlots
	rec.FaultLostGrants = s.recScratch.FaultLostGrants
	rec.FaultKilled = s.recScratch.FaultKilled
	copy(rec.PerInput, s.recScratch.PerInput)
	copy(rec.PerChannel, s.recScratch.PerChannel)
	s.rec.CommitSnapshot()
}

// runSlotRemote is the cluster-mode scheduling phase: every port's prepare
// half runs locally (building the request vectors), the whole batch is
// handed to the remote scheduler in one call, and the returned assignments
// flow through each port's commit half — fair selection and hold
// bookkeeping stay on the switch, so a cluster run's statistics are
// byte-identical to the in-process engines'.
func (s *Switch) runSlotRemote(slot int64) error {
	t0 := telemetry.NowNS()
	s.batchReqs = s.batchReqs[:0]
	s.batchOut = s.batchOut[:0]
	for o, p := range s.ports {
		p.prepare(s.perPort[o])
		s.batchReqs = append(s.batchReqs, BatchRequest{
			Port: o, Count: p.count, Occupied: p.occupied, Mask: p.mask,
		})
		out := BatchResult{Port: o, Res: p.res}
		if p.mask != nil {
			out.Shadow = p.shadow
		}
		s.batchOut = append(s.batchOut, out)
	}
	t1 := telemetry.NowNS()
	if err := s.cfg.Remote.ScheduleBatch(slot, s.batchReqs, s.batchOut); err != nil {
		return fmt.Errorf("interconnect: remote scheduling slot %d: %w", slot, err)
	}
	t2 := telemetry.NowNS()
	for o, p := range s.ports {
		p.afterRemote()
		s.results[o] = p.commit()
	}
	t3 := telemetry.NowNS()
	if cs := s.stats.Cluster; cs != nil {
		cs.PrepareTime.Observe(time.Duration(t1 - t0))
		cs.CommitTime.Observe(time.Duration(t3 - t2))
	}
	if tr := s.remoteSpans; tr != nil {
		tr.Emit(0, telemetry.Span{Slot: slot, Stage: telemetry.StagePrepare, Port: -1, Start: t0, Dur: t1 - t0})
		tr.Emit(0, telemetry.Span{Slot: slot, Stage: telemetry.StageCommit, Port: -1, Start: t2, Dur: t3 - t2})
		tr.Emit(0, telemetry.Span{Slot: slot, Stage: telemetry.StageSlot, Port: -1, Start: t0, Dur: t3 - t0})
	}
	return nil
}

// Run drives the switch with gen for the given number of slots and returns
// the final statistics. The switch cannot be reused afterwards.
func (s *Switch) Run(gen traffic.Generator, slots int) (*Stats, error) {
	var buf []traffic.Packet
	for slot := 0; slot < slots; slot++ {
		buf = gen.Generate(slot, buf[:0])
		if err := s.RunSlot(buf); err != nil {
			return nil, err
		}
	}
	return s.Finalize(), nil
}

// Finalize shuts down the worker pool (distributed mode), merges per-port
// statistics into the run totals and returns them. Further RunSlot calls
// fail.
func (s *Switch) Finalize() *Stats {
	if !s.merged {
		if s.eng != nil {
			// The pool barrier in RunSlot already ordered the workers'
			// writes before ours; shutdown additionally joins the
			// goroutines so port state and busy times are settled.
			s.eng.shutdown()
		}
		s.sampleAllocs()
		s.stats.Engine.settle()
		for _, p := range s.ports {
			p.mergeInto(s.stats)
			// Schedulers with background resources (the parallel breaker
			// pool) release them here.
			if c, ok := p.sched.(io.Closer); ok {
				c.Close()
			}
		}
		s.merged = true
	}
	return s.stats
}
