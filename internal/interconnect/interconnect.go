// Package interconnect simulates the paper's N×N time-slotted WDM optical
// interconnect end to end: slot-aligned packet arrivals are partitioned by
// destination fiber, each output fiber's scheduler resolves contention
// independently (the paper's distributed scheduling argument, Section I),
// winners are selected fairly among same-wavelength requests, channel
// holds for multi-slot connections (Section V) are tracked, and physical
// feasibility can be checked against the Fig. 1 datapath model.
//
// The simulator runs in two modes producing identical results: sequential
// (one loop over output ports, for benchmarking algorithm cost) and
// distributed (one goroutine per output port per slot, demonstrating that
// the per-fiber schedulers share no state).
package interconnect

import (
	"fmt"
	"sync"

	"wdmsched/internal/core"
	"wdmsched/internal/fabric"
	"wdmsched/internal/traffic"
	"wdmsched/internal/wavelength"
)

// Config describes an interconnect simulation.
type Config struct {
	// N is the number of input and output fibers.
	N int
	// Conv is the output-side wavelength conversion model.
	Conv wavelength.Conversion
	// Scheduler names the per-port scheduling algorithm (core.NewByName);
	// empty means "exact".
	Scheduler string
	// Selector names the same-wavelength tie-break: "round-robin"
	// (default) or "random".
	Selector string
	// Seed drives the random selector streams.
	Seed uint64
	// Disturb enables Section V disturb-mode rescheduling of held
	// multi-slot connections.
	Disturb bool
	// Distributed runs one goroutine per output port each slot.
	Distributed bool
	// ValidateFabric routes every slot's grants through the Fig. 1
	// datapath model and fails on physical infeasibility (slower;
	// intended for tests and spot checks).
	ValidateFabric bool
	// PriorityClasses > 1 enables strict-priority QoS scheduling (the
	// paper's Section VI future work): packets carry a Priority class and
	// each port schedules classes in descending priority with the exact
	// algorithm. Incompatible with Disturb and with a non-exact
	// Scheduler.
	PriorityClasses int
}

// arrival is a packet after input admission, as seen by an output port.
type arrival struct {
	fiber    int
	wave     int
	duration int
	class    int
}

// Switch is a running interconnect simulation.
type Switch struct {
	cfg   Config
	k     int
	ports []*outputPort
	dp    *fabric.Datapath
	stats *Stats

	// inputHold[(i·k)+w] > 0 means input channel (i, λw) is still
	// transmitting an earlier multi-slot connection and cannot carry a
	// new packet (input admission).
	inputHold []int

	// Per-slot scratch.
	perPort    [][]arrival
	slotGrants []fabric.Grant
	merged     bool
}

// New builds a switch from the configuration.
func New(cfg Config) (*Switch, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("interconnect: invalid N=%d", cfg.N)
	}
	k := cfg.Conv.K()
	schedName := cfg.Scheduler
	if schedName == "" {
		schedName = "exact"
	}
	if cfg.PriorityClasses > 1 {
		if cfg.Disturb {
			return nil, fmt.Errorf("interconnect: priority classes and disturb mode are mutually exclusive")
		}
		if schedName != "exact" {
			return nil, fmt.Errorf("interconnect: priority classes require the exact scheduler, have %q", schedName)
		}
	}
	selName := cfg.Selector
	if selName == "" {
		selName = "round-robin"
	}
	dp, err := fabric.NewDatapath(cfg.N, cfg.Conv)
	if err != nil {
		return nil, err
	}
	sw := &Switch{
		cfg:       cfg,
		k:         k,
		dp:        dp,
		stats:     newStats(cfg.N, k, cfg.PriorityClasses),
		inputHold: make([]int, cfg.N*k),
		perPort:   make([][]arrival, cfg.N),
	}
	rng := traffic.NewRNG(cfg.Seed)
	for o := 0; o < cfg.N; o++ {
		sched, err := core.NewByName(schedName, cfg.Conv)
		if err != nil {
			return nil, err
		}
		var sel fabric.Selector
		switch selName {
		case "round-robin":
			sel = fabric.NewRoundRobin(k)
		case "random":
			sel = fabric.NewRandom(rng.Uint64())
		case "fixed-priority":
			// Unfair baseline for the S7 ablation.
			sel = fabric.NewFixedPriority()
		default:
			return nil, fmt.Errorf("interconnect: unknown selector %q", selName)
		}
		port := newOutputPort(o, cfg.N, k, sched, sel, cfg.Disturb)
		if cfg.PriorityClasses > 1 {
			prio, err := core.NewPriorityScheduler(cfg.Conv)
			if err != nil {
				return nil, err
			}
			port.enableClasses(cfg.PriorityClasses, prio)
		}
		sw.ports = append(sw.ports, port)
	}
	return sw, nil
}

// K returns the wavelengths per fiber.
func (s *Switch) K() int { return s.k }

// N returns the fibers per side.
func (s *Switch) N() int { return s.cfg.N }

// RunSlot advances the simulation by one slot with the given arrivals.
// Packets outside the interconnect's shape or with non-positive duration
// are rejected with an error.
func (s *Switch) RunSlot(packets []traffic.Packet) error {
	if s.merged {
		return fmt.Errorf("interconnect: switch already finalized")
	}
	n, k := s.cfg.N, s.k
	for o := range s.perPort {
		s.perPort[o] = s.perPort[o][:0]
	}
	// Input admission: a channel still transmitting an earlier
	// connection cannot launch a new packet.
	for _, p := range packets {
		if p.InputFiber < 0 || p.InputFiber >= n || p.DestFiber < 0 || p.DestFiber >= n ||
			p.Wavelength < 0 || p.Wavelength >= k {
			return fmt.Errorf("interconnect: packet out of shape: %+v", p)
		}
		if p.Duration < 1 {
			return fmt.Errorf("interconnect: non-positive duration: %+v", p)
		}
		if s.inputHold[p.InputFiber*k+p.Wavelength] > 0 {
			s.stats.Offered.Inc()
			s.stats.InputBlocked.Inc()
			continue
		}
		s.perPort[p.DestFiber] = append(s.perPort[p.DestFiber], arrival{
			fiber: p.InputFiber, wave: p.Wavelength, duration: p.Duration,
			class: p.Priority,
		})
	}

	// Distributed phase: each output port schedules independently.
	results := make([][]portGrant, n)
	if s.cfg.Distributed {
		var wg sync.WaitGroup
		wg.Add(n)
		for o := 0; o < n; o++ {
			go func(o int) {
				defer wg.Done()
				results[o] = s.ports[o].runSlot(s.perPort[o])
			}(o)
		}
		wg.Wait()
	} else {
		for o := 0; o < n; o++ {
			results[o] = s.ports[o].runSlot(s.perPort[o])
		}
	}

	// Input-hold bookkeeping and (optionally) datapath validation.
	s.slotGrants = s.slotGrants[:0]
	for o, grants := range results {
		for _, g := range grants {
			if !g.held {
				s.inputHold[g.fiber*k+g.wave] = g.duration
			}
			if s.cfg.ValidateFabric {
				s.slotGrants = append(s.slotGrants, fabric.Grant{
					InputFiber:      g.fiber,
					InputWavelength: g.wave,
					OutputFiber:     o,
					OutputChannel:   g.channel,
				})
			}
		}
		// Disturb-mode preemption aborts the in-flight transmission and
		// frees its input channel immediately.
		for _, pre := range s.ports[o].preemptees {
			s.inputHold[pre.fiber*k+pre.wave] = 0
		}
	}
	if s.cfg.ValidateFabric {
		if err := s.dp.Route(s.slotGrants); err != nil {
			return fmt.Errorf("interconnect: slot physically infeasible: %w", err)
		}
	}
	// Age input holds.
	for i := range s.inputHold {
		if s.inputHold[i] > 0 {
			s.inputHold[i]--
		}
	}
	s.stats.Slots++
	return nil
}

// Run drives the switch with gen for the given number of slots and returns
// the final statistics. The switch cannot be reused afterwards.
func (s *Switch) Run(gen traffic.Generator, slots int) (*Stats, error) {
	var buf []traffic.Packet
	for slot := 0; slot < slots; slot++ {
		buf = gen.Generate(slot, buf[:0])
		if err := s.RunSlot(buf); err != nil {
			return nil, err
		}
	}
	return s.Finalize(), nil
}

// Finalize merges per-port statistics into the run totals and returns
// them. Further RunSlot calls fail.
func (s *Switch) Finalize() *Stats {
	if !s.merged {
		for _, p := range s.ports {
			p.mergeInto(s.stats)
		}
		s.merged = true
	}
	return s.stats
}
