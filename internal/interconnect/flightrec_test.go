package interconnect

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"

	"wdmsched/internal/fault"
	"wdmsched/internal/telemetry"
	"wdmsched/internal/traffic"
)

// newRecordedSwitch builds a faulted switch with a flight recorder and
// telemetry attached, plus its traffic generator.
func newRecordedSwitch(t *testing.T, distributed bool, rec *telemetry.FlightRecorder, reg *telemetry.Registry) (*Switch, traffic.Generator) {
	t.Helper()
	const n, k = 4, 8
	inj, err := fault.NewMarkov(fault.MarkovConfig{
		N: n, K: k, Seed: 3,
		ConverterFail: 0.02, ConverterRepair: 0.2,
		ChannelDark: 0.01, ChannelRestore: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	sw := mustSwitch(t, Config{
		N: n, Conv: circ(k, 1, 1), Seed: 8, Distributed: distributed,
		Telemetry: reg, Recorder: rec, Faults: inj,
	})
	gen, err := traffic.NewBernoulli(traffic.Config{N: n, K: k, Seed: 21,
		Hold: traffic.HoldingTime{Mean: 2}}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	return sw, gen
}

// TestFlightRecorderConcurrentScrape races live /metrics and /snapshot
// scrapes against the slot loop while it takes mid-run Snapshots and dumps
// incident bundles at slot boundaries — the full observability surface
// active at once, exercised under the race gate (`go test -race`, the
// interconnect leg of `make check`).
func TestFlightRecorderConcurrentScrape(t *testing.T) {
	for _, mode := range []struct {
		name        string
		distributed bool
	}{{"sequential", false}, {"distributed", true}} {
		t.Run(mode.name, func(t *testing.T) {
			const slots = 400
			reg := telemetry.NewRegistry()
			rec := telemetry.NewFlightRecorder(telemetry.FlightRecorderConfig{
				Ports: 4, SnapshotEvery: 32, SnapshotCap: 8,
			})
			sw, gen := newRecordedSwitch(t, mode.distributed, rec, reg)

			stop := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < 3; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
							// Both scrape formats the telemetry.Server
							// serves: Prometheus text and JSON snapshot.
							var sb strings.Builder
							snap := reg.Snapshot()
							if err := telemetry.WritePrometheus(&sb, snap); err != nil {
								t.Error(err)
								return
							}
							if err := telemetry.WriteJSON(io.Discard, snap); err != nil {
								t.Error(err)
								return
							}
						}
					}
				}()
			}

			var snap Snapshot
			var buf []traffic.Packet
			dumps := 0
			for slot := 0; slot < slots; slot++ {
				buf = gen.Generate(slot, buf[:0])
				if err := sw.RunSlot(buf); err != nil {
					t.Fatal(err)
				}
				if slot%100 == 99 {
					// Slot boundary: a mid-run Snapshot and a full bundle
					// dump race the scrapers above.
					sw.Snapshot(&snap)
					if msg := snap.Conserved(); msg != "" {
						t.Fatalf("slot %d: %s", slot, msg)
					}
					w := telemetry.NewBundleWriter("test", "request", int64(slot))
					if err := w.AddFunc("snapshots.jsonl", rec.WriteSnapshotsJSONL); err != nil {
						t.Fatal(err)
					}
					if err := w.AddFunc("faults.jsonl", rec.WriteFaultsJSONL); err != nil {
						t.Fatal(err)
					}
					var out bytes.Buffer
					if _, err := w.WriteTo(&out); err != nil {
						t.Fatal(err)
					}
					if _, err := telemetry.ReadBundle(&out); err != nil {
						t.Fatalf("dumped bundle does not round-trip: %v", err)
					}
					dumps++
				}
			}
			close(stop)
			wg.Wait()
			if dumps != 4 {
				t.Fatalf("took %d dumps, want 4", dumps)
			}
			sw.Finalize()
		})
	}
}

// TestFlightRecorderSnapshotCadence checks the switch records counter
// snapshots at the configured cadence and that the recorded counters are
// exactly what Switch.Snapshot reported at those slots.
func TestFlightRecorderSnapshotCadence(t *testing.T) {
	rec := telemetry.NewFlightRecorder(telemetry.FlightRecorderConfig{
		Ports: 4, SnapshotEvery: 64, SnapshotCap: 16,
	})
	sw, gen := newRecordedSwitch(t, false, rec, nil)
	var buf []traffic.Packet
	want := map[int64]Snapshot{}
	for slot := 0; slot < 300; slot++ {
		buf = gen.Generate(slot, buf[:0])
		if err := sw.RunSlot(buf); err != nil {
			t.Fatal(err)
		}
		if (slot+1)%64 == 0 {
			var s Snapshot
			sw.Snapshot(&s)
			s.PerInput = append([]int64(nil), s.PerInput...)
			s.PerChannel = append([]int64(nil), s.PerChannel...)
			want[int64(slot+1)] = s
		}
	}
	got := rec.Snapshots()
	if len(got) != len(want) {
		t.Fatalf("recorded %d snapshots, want %d", len(got), len(want))
	}
	for _, g := range got {
		w, ok := want[g.Slot]
		if !ok {
			t.Fatalf("recorded snapshot at unexpected slot %d", g.Slot)
		}
		if g.Offered != w.Offered || g.Granted != w.Granted ||
			g.InputBlocked != w.InputBlocked || g.OutputDropped != w.OutputDropped ||
			g.BusyChannelSlots != w.BusyChannelSlots ||
			g.FaultLostGrants != w.FaultLostGrants || g.FaultKilled != w.FaultKilled {
			t.Fatalf("slot %d: recorded %+v, want %+v", g.Slot, g, w)
		}
		for i := range w.PerInput {
			if g.PerInput[i] != w.PerInput[i] {
				t.Fatalf("slot %d: per_input[%d] = %d, want %d", g.Slot, i, g.PerInput[i], w.PerInput[i])
			}
		}
		for b := range w.PerChannel {
			if g.PerChannel[b] != w.PerChannel[b] {
				t.Fatalf("slot %d: per_channel[%d] = %d, want %d", g.Slot, b, g.PerChannel[b], w.PerChannel[b])
			}
		}
	}
	if near := rec.NearestSnapshotBefore(200); near == nil || near.Slot != 192 {
		t.Fatalf("NearestSnapshotBefore(200) = %v, want slot 192", near)
	}
}

// TestFlightRecorderFaultTransitions checks mask-transition recording is
// edge-triggered and internally consistent: per channel, each transition's
// From matches the previous transition's To, starting from Healthy.
func TestFlightRecorderFaultTransitions(t *testing.T) {
	rec := telemetry.NewFlightRecorder(telemetry.FlightRecorderConfig{
		Ports: 4, FaultCap: 1 << 16,
	})
	sw, gen := newRecordedSwitch(t, false, rec, nil)
	var buf []traffic.Packet
	for slot := 0; slot < 500; slot++ {
		buf = gen.Generate(slot, buf[:0])
		if err := sw.RunSlot(buf); err != nil {
			t.Fatal(err)
		}
	}
	trans := rec.FaultTransitions()
	if len(trans) == 0 {
		t.Fatal("Markov faults over 500 slots produced no transitions")
	}
	state := map[[2]int32]uint8{} // (port, channel) → last To
	lastSlot := int64(-1)
	for _, tr := range trans {
		if tr.Slot < lastSlot {
			t.Fatalf("transitions out of slot order: %d after %d", tr.Slot, lastSlot)
		}
		lastSlot = tr.Slot
		key := [2]int32{tr.Port, tr.Channel}
		if prev := state[key]; tr.From != prev {
			t.Fatalf("port %d channel %d: transition From=%d, previous state %d", tr.Port, tr.Channel, tr.From, prev)
		}
		if tr.From == tr.To {
			t.Fatalf("no-op transition recorded: %+v", tr)
		}
		state[key] = tr.To
	}
}

// TestRecorderTraceConflict checks New rejects a config carrying both a
// recorder and a distinct decision tracer (the events would be recorded
// twice), but accepts Trace pointing at the recorder's own tracer.
func TestRecorderTraceConflict(t *testing.T) {
	const n, k = 4, 8
	rec := telemetry.NewFlightRecorder(telemetry.FlightRecorderConfig{Ports: n})
	_, err := New(Config{
		N: n, Conv: circ(k, 1, 1), Seed: 1,
		Recorder: rec, Trace: telemetry.NewDecisionTracer(n, 8),
	})
	if err == nil || !strings.Contains(err.Error(), "decision tracer") {
		t.Fatalf("distinct Trace+Recorder accepted: %v", err)
	}
	sw, err := New(Config{
		N: n, Conv: circ(k, 1, 1), Seed: 1,
		Recorder: rec, Trace: rec.Decisions(),
	})
	if err != nil {
		t.Fatalf("Trace = Recorder.Decisions() rejected: %v", err)
	}
	sw.Finalize()
}
