package interconnect

import "wdmsched/internal/metrics"

// Stats aggregates one simulation run. Packet counts partition as
// Offered = Granted + InputBlocked + OutputDropped for newly arriving
// packets; Preempted counts in-flight multi-slot connections that disturb
// mode rescheduling failed to re-place (they are not re-counted in
// Offered).
type Stats struct {
	// Slots is the number of simulated time slots.
	Slots int
	// Offered counts generated packets presented to the interconnect.
	Offered metrics.Counter
	// Granted counts new packets that won an output channel.
	Granted metrics.Counter
	// InputBlocked counts packets that arrived on an input channel still
	// held by an earlier multi-slot connection (never reached a
	// scheduler).
	InputBlocked metrics.Counter
	// OutputDropped counts packets that lost output contention.
	OutputDropped metrics.Counter
	// Preempted counts held connections displaced by disturb-mode
	// rescheduling (Section V).
	Preempted metrics.Counter
	// BusyChannelSlots counts (output channel, slot) pairs spent
	// transmitting; utilization is this over N·k·Slots.
	BusyChannelSlots metrics.Counter
	// PerInputGranted counts grants per input fiber, for fairness
	// analysis (Jain index).
	PerInputGranted []int64
	// MatchSizes is the distribution of per-fiber per-slot matching
	// sizes.
	MatchSizes *metrics.Histogram
	// PerClassOffered and PerClassGranted break new-packet counts down
	// by QoS class when Config.PriorityClasses > 1 (empty otherwise).
	PerClassOffered []int64
	PerClassGranted []int64
	// PerChannelBusy counts busy slots per output wavelength channel,
	// summed over fibers — exposes any channel-index bias of the
	// scheduling algorithm (First Available intentionally prefers the
	// minus end of each window).
	PerChannelBusy []int64
	// Engine reports run-time metrics of the slot engine itself: per-slot
	// scheduling latency, per-port busy time, and the sampled
	// allocations-per-slot gauge. Populated by the Switch (nil for Stats
	// built outside a Switch).
	Engine *EngineStats
	// Fault reports degraded-mode statistics when fault injection is
	// enabled (Config.Faults); nil otherwise.
	Fault *FaultStats
	// Cluster reports networked-runtime statistics when the slot
	// scheduling ran on a cluster controller (Config.Remote implementing
	// ClusterStatsSource); nil otherwise.
	Cluster *ClusterStats
}

func newStats(n, k, classes int) *Stats {
	s := &Stats{
		PerInputGranted: make([]int64, n),
		PerChannelBusy:  make([]int64, k),
		MatchSizes:      metrics.NewHistogram(k),
	}
	if classes > 1 {
		s.PerClassOffered = make([]int64, classes)
		s.PerClassGranted = make([]int64, classes)
	}
	return s
}

// LossRate is the fraction of offered packets not granted (input blocking
// plus output contention).
func (s *Stats) LossRate() float64 {
	if s.Offered.Value() == 0 {
		return 0
	}
	return 1 - float64(s.Granted.Value())/float64(s.Offered.Value())
}

// AcceptanceRate is Granted / Offered.
func (s *Stats) AcceptanceRate() float64 {
	if s.Offered.Value() == 0 {
		return 0
	}
	return float64(s.Granted.Value()) / float64(s.Offered.Value())
}

// Utilization is the fraction of output channel-slots spent transmitting.
func (s *Stats) Utilization(n, k int) float64 {
	den := float64(n) * float64(k) * float64(s.Slots)
	if den == 0 {
		return 0
	}
	return float64(s.BusyChannelSlots.Value()) / den
}

// Throughput is granted packets per output channel per slot — the
// normalized network throughput the paper's algorithms maximize slotwise.
func (s *Stats) Throughput(n, k int) float64 {
	den := float64(n) * float64(k) * float64(s.Slots)
	if den == 0 {
		return 0
	}
	return float64(s.Granted.Value()) / den
}

// ClassLossRate returns the loss rate of QoS class c (0 when the class
// saw no traffic or classes are not enabled).
func (s *Stats) ClassLossRate(c int) float64 {
	if c < 0 || c >= len(s.PerClassOffered) || s.PerClassOffered[c] == 0 {
		return 0
	}
	return 1 - float64(s.PerClassGranted[c])/float64(s.PerClassOffered[c])
}

// FairnessJain computes Jain's index over per-input-fiber grant counts.
func (s *Stats) FairnessJain() float64 {
	shares := make([]float64, len(s.PerInputGranted))
	for i, g := range s.PerInputGranted {
		shares[i] = float64(g)
	}
	return metrics.Jain(shares)
}
