package interconnect

import "wdmsched/internal/metrics"

// FaultStats reports how a run degraded under an injected fault schedule
// (Config.Faults). It separates the fault exposure (how much hardware was
// broken, for how long) from the traffic it cost (grants the degraded
// matchings gave up, in-flight connections the faults aborted).
type FaultStats struct {
	// HealthyChannels is the per-slot distribution of fully healthy output
	// channels across the whole switch (0..N·k); its mean over Slots is
	// the average surviving capacity.
	HealthyChannels *metrics.Histogram
	// DegradedSlots counts slots in which at least one channel anywhere
	// was not healthy.
	DegradedSlots metrics.Counter
	// DegradedChannelSlots counts (channel, slot) pairs spent in any
	// non-healthy state; it is the sum of the two breakdowns below.
	DegradedChannelSlots metrics.Counter
	// ConverterFailedChannelSlots counts (channel, slot) pairs with a
	// failed converter (channel usable only at its own wavelength).
	ConverterFailedChannelSlots metrics.Counter
	// DarkChannelSlots counts (channel, slot) pairs spent dark (channel
	// out of service), including channels of down ports.
	DarkChannelSlots metrics.Counter
	// LostGrants counts grants the fault mask cost: per slot and port, the
	// healthy-graph matching size minus the degraded matching size on the
	// same request vector and occupancy.
	LostGrants metrics.Counter
	// KilledConnections counts in-flight multi-slot connections aborted
	// because their channel went dark or lost its converter mid-hold.
	KilledConnections metrics.Counter
}

func newFaultStats(n, k int) *FaultStats {
	return &FaultStats{HealthyChannels: metrics.NewHistogram(n * k)}
}

// DegradedFraction is the fraction of slots with any fault present.
func (f *FaultStats) DegradedFraction(slots int) float64 {
	if slots == 0 {
		return 0
	}
	return float64(f.DegradedSlots.Value()) / float64(slots)
}

// MeanHealthyChannels is the average number of healthy channels per slot.
func (f *FaultStats) MeanHealthyChannels() float64 { return f.HealthyChannels.Mean() }
