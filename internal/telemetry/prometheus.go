package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// escapeHelp escapes a HELP string per the Prometheus text format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// labelString renders {k="v",…} including any extra trailing pairs, or ""
// when there are none.
func labelString(labels []Label, extra ...Label) string {
	if len(labels)+len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range append(append([]Label{}, labels...), extra...) {
		if i > 0 {
			b.WriteByte(',')
		}
		// escapeLabel already produced the exact exposition-format escapes;
		// %q would escape the backslashes a second time.
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4). Series sharing a name get one HELP/TYPE header;
// histograms expand to cumulative _bucket series with an explicit +Inf,
// plus _sum and _count; summaries expand to the mean, _stddev and _count.
func WritePrometheus(w io.Writer, snapshot []Metric) error {
	var lastName string
	for i := range snapshot {
		m := &snapshot[i]
		if m.Name != lastName {
			lastName = m.Name
			if m.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, escapeHelp(m.Help)); err != nil {
					return err
				}
			}
			typ := m.Kind
			if typ == "summary" {
				typ = "gauge" // exposed as mean + stddev gauges, not quantiles
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, typ); err != nil {
				return err
			}
		}
		var err error
		switch m.Kind {
		case "histogram":
			var cum int64
			for _, b := range m.Buckets {
				cum += b.Count
				_, err = fmt.Fprintf(w, "%s_bucket%s %d\n",
					m.Name, labelString(m.Labels, Label{"le", formatFloat(b.Upper)}), cum)
				if err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n",
				m.Name, labelString(m.Labels, Label{"le", "+Inf"}), m.Count); err != nil {
				return err
			}
			if _, err = fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, labelString(m.Labels), formatFloat(m.Sum)); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count%s %d\n", m.Name, labelString(m.Labels), m.Count)
		case "summary":
			if _, err = fmt.Fprintf(w, "%s%s %s\n", m.Name, labelString(m.Labels), formatFloat(m.Value)); err != nil {
				return err
			}
			if _, err = fmt.Fprintf(w, "%s_stddev%s %s\n", m.Name, labelString(m.Labels), formatFloat(m.Stddev)); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count%s %d\n", m.Name, labelString(m.Labels), m.Count)
		default: // counter, gauge
			_, err = fmt.Fprintf(w, "%s%s %s\n", m.Name, labelString(m.Labels), formatFloat(m.Value))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders a float compactly: integers without a decimal point,
// everything else with %g.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Snapshot is the JSON document served at /snapshot.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// WriteJSON renders a snapshot as an indented JSON document. Histogram
// buckets carry finite upper bounds only (the implicit +Inf bucket is
// recoverable from Count), so the document is always valid JSON.
func WriteJSON(w io.Writer, snapshot []Metric) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Snapshot{Metrics: snapshot})
}
