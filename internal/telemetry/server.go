package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// expvarReg is the registry behind the process-wide expvar variable. The
// variable itself can only be published once (expvar.Publish panics on
// duplicates), so servers swap the pointer instead.
var expvarReg atomic.Pointer[Registry]

// publishExpvar installs the "wdmsched" expvar variable exactly once.
var publishExpvar = func() func(*Registry) {
	var once atomic.Bool
	return func(r *Registry) {
		expvarReg.Store(r)
		if once.CompareAndSwap(false, true) {
			expvar.Publish("wdmsched", expvar.Func(func() any {
				if reg := expvarReg.Load(); reg != nil {
					return Snapshot{Metrics: reg.Snapshot()}
				}
				return nil
			}))
		}
	}
}()

// Server is an opt-in HTTP endpoint exposing a Registry while a simulation
// runs: Prometheus text at /metrics, a JSON document at /snapshot, the
// process expvars at /debug/vars, and the net/http/pprof profiler under
// /debug/pprof/.
type Server struct {
	ln  net.Listener
	srv *http.Server
	reg *Registry
	mux *http.ServeMux

	// readiness is the /readyz probe callback (nil = always ready).
	readiness atomic.Pointer[func() bool]
}

// NewServer binds addr (e.g. ":8080" or "127.0.0.1:0") and starts serving
// reg in a background goroutine. Close shuts it down.
func NewServer(addr string, reg *Registry) (*Server, error) {
	if reg == nil {
		return nil, fmt.Errorf("telemetry: nil registry")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	publishExpvar(reg)

	s := &Server{ln: ln, reg: reg}
	mux := http.NewServeMux()
	s.mux = mux
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// HandleFunc registers an extra handler on the server's mux — e.g. a node
// process exposing its span dump at /spans next to /metrics. Register
// before any request arrives; ServeMux is not safe for concurrent
// registration and serving.
func (s *Server) HandleFunc(pattern string, f func(http.ResponseWriter, *http.Request)) {
	s.mux.HandleFunc(pattern, f)
}

// SetReadiness installs the /readyz probe callback. Without one the
// endpoint always reports ready; with one it reports 503 whenever fn
// returns false — wdmserve wires the service's drain state here so load
// balancers stop routing to a draining process while /healthz (pure
// liveness) stays green. fn must be safe for concurrent use; installing
// is safe at any time, including while serving.
func (s *Server) SetReadiness(fn func() bool) { s.readiness.Store(&fn) }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<html><head><title>wdmsched telemetry</title></head><body>
<h1>wdmsched telemetry</h1>
<ul>
<li><a href="/metrics">/metrics</a> — Prometheus text exposition</li>
<li><a href="/snapshot">/snapshot</a> — JSON metric snapshot</li>
<li><a href="/healthz">/healthz</a> — liveness probe</li>
<li><a href="/readyz">/readyz</a> — readiness probe (503 while draining)</li>
<li><a href="/debug/vars">/debug/vars</a> — expvar</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — runtime profiler</li>
</ul>
</body></html>
`)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if fn := s.readiness.Load(); fn != nil && !(*fn)() {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := WritePrometheus(w, s.reg.Snapshot()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := WriteJSON(w, s.reg.Snapshot()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
