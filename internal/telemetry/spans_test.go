package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestSpanStageStrings(t *testing.T) {
	for s := StageSlot; s <= StageFallback; s++ {
		name := s.String()
		if name == "unknown" {
			t.Fatalf("stage %d has no name", s)
		}
		if got := ParseSpanStage(name); got != s {
			t.Fatalf("ParseSpanStage(%q) = %d, want %d", name, got, s)
		}
	}
	if SpanStage(0).String() != "unknown" || ParseSpanStage("nope") != 0 {
		t.Fatal("unknown stage round-trip broken")
	}
}

func TestSpanTracerEmitAndSnapshot(t *testing.T) {
	tr := NewSpanTracer(2, 8)
	tr.Emit(0, Span{Slot: 1, Stage: StagePrepare, Port: -1, Start: 100, Dur: 10})
	tr.Emit(1, Span{Slot: 1, Lane: 1, Stage: StageRPC, ID: 42, Port: -1, Start: 50, Dur: 30})
	tr.Emit(5, Span{Slot: 1, Stage: StageCommit}) // lane never ensured: dropped
	if got := tr.Emitted(); got != 2 {
		t.Fatalf("Emitted = %d, want 2", got)
	}
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("Spans len = %d, want 2", len(spans))
	}
	if spans[0].Stage != StageRPC || spans[1].Stage != StagePrepare {
		t.Fatalf("spans not sorted by start: %+v", spans)
	}
	tr.Reset()
	if tr.Emitted() != 0 || len(tr.Spans()) != 0 {
		t.Fatal("Reset did not clear lanes")
	}
}

func TestSpanTracerOverflowKeepsNewest(t *testing.T) {
	tr := NewSpanTracer(1, 4)
	for i := 0; i < 10; i++ {
		tr.Emit(0, Span{Slot: int64(i), Stage: StageSchedule, Start: int64(i)})
	}
	if got := tr.Emitted(); got != 10 {
		t.Fatalf("Emitted = %d, want 10", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if s.Slot != int64(6+i) {
			t.Fatalf("span %d has slot %d, want %d (newest retained)", i, s.Slot, 6+i)
		}
	}
}

func TestSpanTracerEnsureLanesConcurrentWithEmit(t *testing.T) {
	tr := NewSpanTracer(1, 64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.EnsureLanes(g + 2)
				tr.Emit(g, Span{Slot: int64(i), Stage: StageSchedule})
				tr.Spans()
			}
		}(g)
	}
	wg.Wait()
	if tr.Lanes() < 5 {
		t.Fatalf("Lanes = %d, want >= 5", tr.Lanes())
	}
}

func TestSpanTracerWriteJSONL(t *testing.T) {
	tr := NewSpanTracer(2, 8)
	tr.Emit(0, Span{Slot: 3, Stage: StageDecode, Port: -1, ID: 7, Start: 10, Dur: 5})
	tr.Emit(1, Span{Slot: 3, Lane: 1, Stage: StageSchedule, Port: 2, Start: 12, Dur: 3})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var rec struct {
		Slot  int64  `json:"slot"`
		Lane  int32  `json:"lane"`
		Stage string `json:"stage"`
		Port  int32  `json:"port"`
		ID    uint64 `json:"id"`
		Start int64  `json:"start"`
		Dur   int64  `json:"dur"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if rec.Stage != "decode" || rec.ID != 7 || rec.Port != -1 || rec.Dur != 5 {
		t.Fatalf("unexpected record: %+v", rec)
	}
}
