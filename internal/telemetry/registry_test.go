package telemetry

import (
	"sort"
	"strings"
	"testing"
	"time"

	"wdmsched/internal/metrics"
)

func TestRegistryKindsAndSnapshot(t *testing.T) {
	r := NewRegistry()
	var c metrics.Counter
	c.Add(7)
	var g metrics.Gauge
	g.Set(2.5)
	h := metrics.NewHistogram(4)
	h.Observe(1)
	h.Observe(1)
	h.Observe(9) // overflow
	dh := metrics.NewDurationHistogram()
	dh.Observe(100 * time.Nanosecond)
	var w metrics.Welford
	w.Observe(1)
	w.Observe(3)

	r.Counter("t_counter", "a counter", nil, &c)
	r.Gauge("t_gauge", "a gauge", nil, &g)
	r.Histogram("t_hist", "a histogram", nil, h)
	r.DurationHistogram("t_lat", "a latency histogram", nil, dh)
	r.Welford("t_mean", "a summary", nil, &w)
	r.CounterFunc("t_fn", "computed", []Label{{Key: "x", Value: "1"}}, func() int64 { return 42 })

	if r.Len() != 6 {
		t.Fatalf("Len = %d, want 6", r.Len())
	}
	snap := r.Snapshot()
	if !sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i].Name <= snap[j].Name }) {
		t.Error("snapshot not sorted by name")
	}
	byName := map[string]Metric{}
	for _, m := range snap {
		byName[m.Name] = m
	}
	if m := byName["t_counter"]; m.Value != 7 || m.Kind != "counter" {
		t.Errorf("counter sample = %+v", m)
	}
	if m := byName["t_gauge"]; m.Value != 2.5 || m.Kind != "gauge" {
		t.Errorf("gauge sample = %+v", m)
	}
	if m := byName["t_hist"]; m.Count != 3 || m.Sum != 11 || len(m.Buckets) != 1 ||
		m.Buckets[0] != (Bucket{Upper: 1, Count: 2}) {
		t.Errorf("histogram sample = %+v", m)
	}
	if m := byName["t_lat"]; m.Count != 1 || len(m.Buckets) != 1 {
		t.Errorf("duration histogram sample = %+v", m)
	}
	if m := byName["t_mean"]; m.Value != 2 || m.Count != 2 {
		t.Errorf("summary sample = %+v", m)
	}
	if m := byName["t_fn"]; m.Value != 42 || len(m.Labels) != 1 || m.Labels[0].Value != "1" {
		t.Errorf("func counter sample = %+v", m)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	var c metrics.Counter
	r.Counter("dup", "", []Label{{Key: "a", Value: "b"}}, &c)
	// Same name with different labels is fine.
	r.Counter("dup", "", []Label{{Key: "a", Value: "c"}}, &c)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	r.Counter("dup", "", []Label{{Key: "a", Value: "b"}}, &c)
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	var c metrics.Counter
	c.Add(3)
	h := metrics.NewHistogram(3)
	h.Observe(0)
	h.Observe(2)
	h.Observe(5) // overflow
	r.Counter("p_total", "counted \"things\"\nacross lines", nil, &c)
	r.Histogram("p_sizes", "sizes", []Label{{Key: "srv", Value: "a"}}, h)

	var sb strings.Builder
	if err := WritePrometheus(&sb, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE p_total counter",
		"p_total 3",
		`# HELP p_total counted "things"\nacross lines`,
		"# TYPE p_sizes histogram",
		`p_sizes_bucket{srv="a",le="0"} 1`,
		`p_sizes_bucket{srv="a",le="2"} 2`,    // cumulative
		`p_sizes_bucket{srv="a",le="+Inf"} 3`, // includes overflow
		`p_sizes_sum{srv="a"} 7`,
		`p_sizes_count{srv="a"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line must be "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestWriteJSONOmitsInfinity(t *testing.T) {
	r := NewRegistry()
	h := metrics.NewHistogram(2)
	h.Observe(0)
	h.Observe(100) // overflow — must not appear as +Inf in JSON
	r.Histogram("j_hist", "", nil, h)
	var sb strings.Builder
	if err := WriteJSON(&sb, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "Inf") {
		t.Errorf("JSON output contains infinity: %s", sb.String())
	}
	if !strings.Contains(sb.String(), `"count": 2`) {
		t.Errorf("JSON output missing total count: %s", sb.String())
	}
}
