package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"wdmsched/internal/metrics"
)

func TestFlightRecorderDefaults(t *testing.T) {
	r := NewFlightRecorder(FlightRecorderConfig{Ports: 4})
	if r.SnapshotEvery() != 1024 {
		t.Fatalf("default cadence = %d, want 1024", r.SnapshotEvery())
	}
	if r.Decisions() == nil || r.Decisions().Ports() != 4 {
		t.Fatalf("decision tracer not sized for 4 ports")
	}
	if got := r.Snapshots(); got != nil {
		t.Fatalf("empty recorder retained %d snapshots", len(got))
	}
}

func TestFlightRecorderNeedsPorts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for Ports=0")
		}
	}()
	NewFlightRecorder(FlightRecorderConfig{})
}

func TestFlightRecorderSnapshotRing(t *testing.T) {
	r := NewFlightRecorder(FlightRecorderConfig{Ports: 2, SnapshotCap: 3})
	r.EnsureShape(2, 4)
	for slot := int64(0); slot < 5; slot++ {
		s := r.BeginSnapshot()
		s.Slot = slot * 10
		s.Granted = slot
		for i := range s.PerInput {
			s.PerInput[i] = slot
		}
		r.CommitSnapshot()
	}
	got := r.Snapshots()
	if len(got) != 3 {
		t.Fatalf("retained %d snapshots, want 3 (ring cap)", len(got))
	}
	// Oldest-first: slots 20, 30, 40 survive.
	for i, want := range []int64{20, 30, 40} {
		if got[i].Slot != want {
			t.Fatalf("snapshot[%d].Slot = %d, want %d", i, got[i].Slot, want)
		}
	}
	if len(got[0].PerInput) != 2 || len(got[0].PerChannel) != 4 {
		t.Fatalf("EnsureShape(2,4) gave per_input=%d per_channel=%d",
			len(got[0].PerInput), len(got[0].PerChannel))
	}
}

func TestFlightRecorderNearestSnapshotBefore(t *testing.T) {
	r := NewFlightRecorder(FlightRecorderConfig{Ports: 1, SnapshotCap: 8})
	r.EnsureShape(1, 1)
	for _, slot := range []int64{100, 200, 300} {
		s := r.BeginSnapshot()
		s.Slot = slot
		s.PerInput[0] = slot
		r.CommitSnapshot()
	}
	if got := r.NearestSnapshotBefore(250); got == nil || got.Slot != 200 {
		t.Fatalf("NearestSnapshotBefore(250) = %v, want slot 200", got)
	}
	if got := r.NearestSnapshotBefore(99); got != nil {
		t.Fatalf("NearestSnapshotBefore(99) = %v, want nil", got)
	}
	// The returned record is a copy: mutating it must not touch the ring.
	cp := r.NearestSnapshotBefore(1000)
	cp.PerInput[0] = -1
	if r.Snapshots()[2].PerInput[0] != 300 {
		t.Fatal("NearestSnapshotBefore returned a view into the ring, want a copy")
	}
}

func TestFlightRecorderFaultAndNodeRings(t *testing.T) {
	r := NewFlightRecorder(FlightRecorderConfig{Ports: 1, FaultCap: 2, NodeCap: 2})
	for i := int64(0); i < 3; i++ {
		r.RecordFaultTransition(FaultTransition{Slot: i, Port: 0, Channel: int32(i), From: 0, To: 1})
		r.RecordNodeSample(NodeSample{Slot: i, Node: int32(i), Healthy: i%2 == 0})
	}
	faults := r.FaultTransitions()
	if len(faults) != 2 || faults[0].Slot != 1 || faults[1].Slot != 2 {
		t.Fatalf("fault ring retained %+v, want slots [1 2]", faults)
	}
	nodes := r.NodeSamples()
	if len(nodes) != 2 || nodes[0].Slot != 1 || nodes[1].Slot != 2 {
		t.Fatalf("node ring retained %+v, want slots [1 2]", nodes)
	}
}

func TestFlightRecorderJSONLRoundTrip(t *testing.T) {
	r := NewFlightRecorder(FlightRecorderConfig{Ports: 1, SnapshotCap: 4, FaultCap: 4, NodeCap: 4})
	r.EnsureShape(2, 3)
	s := r.BeginSnapshot()
	s.Slot = 7
	s.Offered = 10
	s.Granted = 9
	s.PerInput[0], s.PerInput[1] = 4, 5
	s.PerChannel[0], s.PerChannel[1], s.PerChannel[2] = 3, 3, 3
	r.CommitSnapshot()
	r.RecordFaultTransition(FaultTransition{Slot: 7, Port: 1, Channel: 2, From: 0, To: 2})
	r.RecordNodeSample(NodeSample{Slot: 7, Node: 1, Healthy: true, Retries: 3, Addr: "127.0.0.1:9"})

	var buf bytes.Buffer
	if err := r.WriteSnapshotsJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var snap SnapshotRecord
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot JSONL does not parse: %v\n%s", err, buf.String())
	}
	if snap.Slot != 7 || snap.Granted != 9 || snap.PerInput[1] != 5 || snap.PerChannel[2] != 3 {
		t.Fatalf("snapshot round-trip = %+v", snap)
	}

	buf.Reset()
	if err := r.WriteFaultsJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var ft FaultTransition
	if err := json.Unmarshal(buf.Bytes(), &ft); err != nil {
		t.Fatalf("fault JSONL does not parse: %v\n%s", err, buf.String())
	}
	if ft != (FaultTransition{Slot: 7, Port: 1, Channel: 2, From: 0, To: 2}) {
		t.Fatalf("fault round-trip = %+v", ft)
	}

	buf.Reset()
	if err := r.WriteNodesJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("node JSONL does not parse: %v\n%s", err, buf.String())
	}
	if raw["healthy"] != float64(1) || raw["retries"] != float64(3) || raw["addr"] != "127.0.0.1:9" {
		t.Fatalf("node round-trip = %v", raw)
	}
}

func TestFlightRecorderDumpRequest(t *testing.T) {
	r := NewFlightRecorder(FlightRecorderConfig{Ports: 1})
	if r.TakeDumpRequest() {
		t.Fatal("dump request pending on a fresh recorder")
	}
	r.RequestDump()
	r.RequestDump() // coalesces
	if !r.TakeDumpRequest() {
		t.Fatal("RequestDump not visible to TakeDumpRequest")
	}
	if r.TakeDumpRequest() {
		t.Fatal("TakeDumpRequest did not consume the request")
	}
	r.NoteDump(5 * time.Millisecond)
	if r.Dumps() != 1 || r.LastDumpLatency() != 5*time.Millisecond {
		t.Fatalf("dump health = (%d, %v)", r.Dumps(), r.LastDumpLatency())
	}
}

func TestFlightRecorderTelemetry(t *testing.T) {
	r := NewFlightRecorder(FlightRecorderConfig{Ports: 1, SnapshotCap: 2, FaultCap: 2, NodeCap: 2})
	r.EnsureShape(1, 1)
	for i := 0; i < 3; i++ { // wrap the snapshot ring: 3 > cap 2
		r.BeginSnapshot().Slot = int64(i)
		r.CommitSnapshot()
	}
	r.NoteDump(2 * time.Second)
	reg := NewRegistry()
	r.RegisterTelemetry(reg)
	vals := map[string]float64{}
	for _, m := range reg.Snapshot() {
		key := m.Name
		for _, l := range m.Labels {
			key += "{" + l.Key + "=" + l.Value + "}"
		}
		vals[key] = m.Value
	}
	if vals["wdm_recorder_records_total{ring=snapshots}"] != 3 {
		t.Fatalf("snapshot records gauge = %v, want 3", vals["wdm_recorder_records_total{ring=snapshots}"])
	}
	if vals["wdm_recorder_dropped_total{ring=snapshots}"] != 1 {
		t.Fatalf("snapshot dropped gauge = %v, want 1", vals["wdm_recorder_dropped_total{ring=snapshots}"])
	}
	if vals["wdm_recorder_ring_occupancy{ring=snapshots}"] != 1 {
		t.Fatalf("wrapped ring occupancy = %v, want 1", vals["wdm_recorder_ring_occupancy{ring=snapshots}"])
	}
	if vals["wdm_recorder_ring_occupancy{ring=faults}"] != 0 {
		t.Fatalf("empty ring occupancy = %v, want 0", vals["wdm_recorder_ring_occupancy{ring=faults}"])
	}
	if vals["wdm_recorder_dumps_total"] != 1 {
		t.Fatalf("dumps gauge = %v, want 1", vals["wdm_recorder_dumps_total"])
	}
	if vals["wdm_recorder_last_dump_seconds"] != 2 {
		t.Fatalf("last dump seconds = %v, want 2", vals["wdm_recorder_last_dump_seconds"])
	}
	// Decision lane series registered too.
	if _, ok := vals["wdm_recorder_records_total{ring=decisions}"]; !ok {
		t.Fatal("decision ring not registered")
	}
}

func TestRegisterSLO(t *testing.T) {
	h := metrics.NewDurationHistogram()
	// 8 samples: 6 fast (1µs), 2 slow (1s) against a 1ms budget.
	for i := 0; i < 6; i++ {
		h.Observe(time.Microsecond)
	}
	h.Observe(time.Second)
	h.Observe(time.Second)
	reg := NewRegistry()
	RegisterSLO(reg, "slot", h, time.Millisecond, 0.9)
	vals := map[string]float64{}
	for _, m := range reg.Snapshot() {
		if len(m.Labels) == 1 && m.Labels[0].Value == "slot" {
			vals[m.Name] = m.Value
		}
	}
	if got := vals["wdm_slo_error_fraction"]; got != 0.25 {
		t.Fatalf("error fraction = %v, want 0.25", got)
	}
	// burn = 0.25 / (1 - 0.9) = 2.5
	if got := vals["wdm_slo_burn_rate"]; got < 2.49 || got > 2.51 {
		t.Fatalf("burn rate = %v, want 2.5", got)
	}
	if got := vals["wdm_slo_budget_seconds"]; got != 0.001 {
		t.Fatalf("budget seconds = %v, want 0.001", got)
	}
}

func TestRegisterSLORejectsBadObjective(t *testing.T) {
	for _, objective := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("no panic for objective %v", objective)
				}
			}()
			RegisterSLO(NewRegistry(), "x", metrics.NewDurationHistogram(), time.Millisecond, objective)
		}()
	}
}

func TestDurationHistogramFractionAbove(t *testing.T) {
	h := metrics.NewDurationHistogram()
	if h.FractionAbove(0) != 0 {
		t.Fatal("empty histogram fraction != 0")
	}
	h.Observe(100 * time.Nanosecond) // bucket 7
	h.Observe(time.Millisecond)      // bucket 20
	h.Observe(time.Second)           // bucket 30
	if got := h.FractionAbove(time.Millisecond); got < 0.33 || got > 0.34 {
		t.Fatalf("FractionAbove(1ms) = %v, want 1/3", got)
	}
	if got := h.FractionAbove(time.Minute); got != 0 {
		t.Fatalf("FractionAbove(1m) = %v, want 0", got)
	}
	// An observation in the budget's own bucket counts as within budget.
	if got := h.FractionAbove(100 * time.Nanosecond); got < 0.66 || got > 0.67 {
		t.Fatalf("FractionAbove(100ns) = %v, want 2/3", got)
	}
}

func TestFlightRecorderRetainedHelperWrap(t *testing.T) {
	// White-box check of the generic ring unwrap.
	got := retained([]int{3, 4, 0, 1, 2}, 5+0) // total == size: no wrap yet at write 5? total=5, size=5 → start=0
	if len(got) != 5 || got[0] != 3 {
		t.Fatalf("retained full ring = %v", got)
	}
	got = retained([]int{5, 6, 2, 3, 4}, 7) // total 7, size 5 → start 2 → [2 3 4 5 6]
	want := "2 3 4 5 6"
	var parts []string
	for _, v := range got {
		parts = append(parts, string(rune('0'+v)))
	}
	if strings.Join(parts, " ") != want {
		t.Fatalf("retained wrapped ring = %v, want %s", got, want)
	}
}
