package telemetry

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

func buildTestBundle(t *testing.T) []byte {
	t.Helper()
	w := NewBundleWriter("wdmtest", "violation", 4096)
	w.Add("config.json", []byte(`{"seed":7}`+"\n"))
	w.Add("snapshots.jsonl", []byte(`{"slot":4000}`+"\n"))
	if err := w.AddJSON("incident.json", map[string]any{"invariant": "ledger", "slot": 4096}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestBundleRoundTrip(t *testing.T) {
	raw := buildTestBundle(t)
	b, err := ReadBundle(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.Version != BundleVersion || b.Manifest.Tool != "wdmtest" ||
		b.Manifest.Trigger != "violation" || b.Manifest.Slot != 4096 {
		t.Fatalf("manifest round-trip = %+v", b.Manifest)
	}
	if got := b.Names(); len(got) != 3 || got[0] != "config.json" {
		t.Fatalf("names = %v", got)
	}
	cfg, err := b.File("config.json")
	if err != nil || string(cfg) != `{"seed":7}`+"\n" {
		t.Fatalf("config = %q, %v", cfg, err)
	}
	inc, err := b.File("incident.json")
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(inc, &m); err != nil || m["invariant"] != "ledger" {
		t.Fatalf("incident = %q (%v)", inc, err)
	}
	if b.Has("nope") {
		t.Fatal("Has reports an entry that was never added")
	}
	if _, err := b.File("nope"); err == nil {
		t.Fatal("File returned data for a missing entry")
	}
}

func TestBundleWriteFile(t *testing.T) {
	w := NewBundleWriter("wdmtest", "sigquit", 1)
	w.Add("a.txt", []byte("hello"))
	path := filepath.Join(t.TempDir(), "incident.tgz")
	if err := w.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBundleFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if data, _ := b.File("a.txt"); string(data) != "hello" {
		t.Fatalf("a.txt = %q", data)
	}
}

func TestBundleTruncated(t *testing.T) {
	raw := buildTestBundle(t)
	// Every strict prefix must fail, not silently yield partial data.
	for _, frac := range []float64{0.1, 0.5, 0.9} {
		cut := int(float64(len(raw)) * frac)
		if _, err := ReadBundle(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded without error", cut, len(raw))
		}
	}
}

func TestBundleCorrupt(t *testing.T) {
	raw := buildTestBundle(t)
	// Flip one byte in the back half (past the gzip header) at several
	// offsets; each must be caught by the gzip CRC, tar structure, or the
	// manifest's per-file CRC.
	for _, off := range []int{len(raw) / 2, len(raw)/2 + 7, len(raw) - 9} {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0xFF
		if _, err := ReadBundle(bytes.NewReader(mut)); err == nil {
			t.Fatalf("corruption at byte %d decoded without error", off)
		}
	}
}

func TestBundleRejectsGarbage(t *testing.T) {
	if _, err := ReadBundle(bytes.NewReader([]byte("this is not a bundle"))); err == nil ||
		!strings.Contains(err.Error(), "gzip") {
		t.Fatalf("garbage input: %v", err)
	}
	if _, err := ReadBundle(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input decoded without error")
	}
}

func TestBundleRejectsWrongVersion(t *testing.T) {
	w := NewBundleWriter("wdmtest", "request", 0)
	w.manifest.Version = BundleVersion + 1
	w.Add("x", []byte("y"))
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	_, err := ReadBundle(&buf)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future-version bundle: %v", err)
	}
}

func TestBundleRejectsDuplicateEntry(t *testing.T) {
	w := NewBundleWriter("wdmtest", "request", 0)
	w.Add("x", []byte("a"))
	w.Add("x", []byte("b"))
	if _, err := w.WriteTo(&bytes.Buffer{}); err == nil {
		t.Fatal("duplicate entry name accepted")
	}
	w2 := NewBundleWriter("wdmtest", "request", 0)
	w2.Add(BundleManifestName, []byte("shadow"))
	if _, err := w2.WriteTo(&bytes.Buffer{}); err == nil {
		t.Fatal("reserved manifest name accepted")
	}
}
