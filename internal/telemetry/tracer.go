package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// EventKind classifies one scheduling decision event.
type EventKind uint8

const (
	// EvGrant: a newly arrived packet was assigned an output channel.
	EvGrant EventKind = iota + 1
	// EvRegrant: a held connection was re-placed by disturb-mode
	// rescheduling (kept distinct from EvGrant so grant-event counts
	// equal Stats.Granted exactly).
	EvRegrant
	// EvReject: a request was denied; Reason says why.
	EvReject
	// EvPreempt: disturb-mode rescheduling dropped a held connection.
	EvPreempt
	// EvFaultKill: a fault killed an in-flight connection mid-hold.
	EvFaultKill
	// EvBreakEdge: the BFA family broke an existing assignment at
	// Channel to admit one more request (paper §IV).
	EvBreakEdge
	// EvSlotLatency: one port finished its slot; Value is wall time in
	// nanoseconds.
	EvSlotLatency
)

// String returns a stable lowercase name for the kind.
func (k EventKind) String() string {
	switch k {
	case EvGrant:
		return "grant"
	case EvRegrant:
		return "regrant"
	case EvReject:
		return "reject"
	case EvPreempt:
		return "preempt"
	case EvFaultKill:
		return "fault-kill"
	case EvBreakEdge:
		return "break-edge"
	case EvSlotLatency:
		return "slot-latency"
	}
	return "unknown"
}

// RejectReason says why an EvReject happened.
type RejectReason uint8

const (
	ReasonNone RejectReason = iota
	// ReasonInputBlocked: the input channel already carries a held
	// connection, so the new arrival never reached a scheduler.
	ReasonInputBlocked
	// ReasonWindowOccupied: every output channel in the conversion
	// window is occupied by earlier traffic.
	ReasonWindowOccupied
	// ReasonFaultMasked: the window has free channels, but faults mask
	// all of them (dark channel or failed converter).
	ReasonFaultMasked
	// ReasonLostMatching: usable free channels existed, but the
	// scheduler's matching granted them to competing requests.
	ReasonLostMatching
)

// String returns a stable lowercase name for the reason.
func (r RejectReason) String() string {
	switch r {
	case ReasonNone:
		return ""
	case ReasonInputBlocked:
		return "input-blocked"
	case ReasonWindowOccupied:
		return "window-occupied"
	case ReasonFaultMasked:
		return "fault-masked"
	case ReasonLostMatching:
		return "lost-matching"
	}
	return "unknown"
}

// Event is one scheduling decision. Fields not meaningful for a kind hold
// -1 (or 0 for Value). Events are plain values sized for ring storage.
type Event struct {
	Slot    int64        // time slot
	Lane    int32        // emitting lane: output port index, or Ports() for switch-level events
	Kind    EventKind    //
	Reason  RejectReason // EvReject only
	Fiber   int32        // input fiber, -1 when n/a
	Wave    int32        // arrival wavelength, -1 when n/a
	Channel int32        // output channel granted / broken, -1 when n/a
	Value   int64        // EvSlotLatency: ns; EvGrant/EvReject: priority class
}

// lane is a single-writer ring buffer. total counts every emission ever;
// the ring keeps the last len(events) of them. total is atomic only so
// live telemetry can read emission counts during a run — events themselves
// are read post-run, after the engine barrier publishes them.
type lane struct {
	events []Event
	total  atomic.Int64
	_      [40]byte // keep neighboring lanes off one cache line
}

// DecisionTracer records scheduling events into per-lane bounded ring
// buffers: one lane per output port plus one switch lane, each written by
// exactly one goroutine, so tracing is race-free and allocation-free under
// both engines. When a lane overflows its capacity the oldest events are
// overwritten (and counted as dropped).
type DecisionTracer struct {
	lanes []lane
	ports int
	cap   int
}

// NewDecisionTracer builds a tracer for a switch with ports output fibers,
// keeping up to perLaneCap events per lane (rounded up to 1).
func NewDecisionTracer(ports, perLaneCap int) *DecisionTracer {
	if ports < 1 {
		panic("telemetry: tracer needs at least one port")
	}
	if perLaneCap < 1 {
		perLaneCap = 1
	}
	t := &DecisionTracer{lanes: make([]lane, ports+1), ports: ports, cap: perLaneCap}
	for i := range t.lanes {
		t.lanes[i].events = make([]Event, perLaneCap)
	}
	return t
}

// Ports returns the number of output-port lanes (the switch lane is extra).
func (t *DecisionTracer) Ports() int { return t.ports }

// SwitchLane returns the lane index for switch-level events (input
// admission happens before requests are fanned out to ports).
func (t *DecisionTracer) SwitchLane() int { return t.ports }

// Emit appends an event to lane l. Each lane must have a single writer;
// the interconnect assigns lane = output port (worker goroutine) and the
// switch lane to the slot-driving goroutine.
func (t *DecisionTracer) Emit(l int, e Event) {
	ln := &t.lanes[l]
	n := ln.total.Load()
	ln.events[n%int64(len(ln.events))] = e
	ln.total.Store(n + 1)
}

// Emitted returns the total number of events emitted across lanes (safe
// to call during a run).
func (t *DecisionTracer) Emitted() int64 {
	var n int64
	for i := range t.lanes {
		n += t.lanes[i].total.Load()
	}
	return n
}

// Dropped returns how many events were overwritten by ring wraparound.
func (t *DecisionTracer) Dropped() int64 {
	var n int64
	for i := range t.lanes {
		if tot := t.lanes[i].total.Load(); tot > int64(t.cap) {
			n += tot - int64(t.cap)
		}
	}
	return n
}

// Reset clears all lanes.
func (t *DecisionTracer) Reset() {
	for i := range t.lanes {
		t.lanes[i].total.Store(0)
	}
}

// Events returns the retained events merged across lanes, ordered by
// (Slot, Lane) with per-lane emission order preserved. Call only after
// the run completes (Finalize): it reads ring memory without
// synchronizing against writers.
func (t *DecisionTracer) Events() []Event {
	var out []Event
	for i := range t.lanes {
		ln := &t.lanes[i]
		tot := ln.total.Load()
		if tot == 0 {
			continue
		}
		size := int64(len(ln.events))
		if tot <= size {
			out = append(out, ln.events[:tot]...)
		} else {
			start := tot % size
			out = append(out, ln.events[start:]...)
			out = append(out, ln.events[:start]...)
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Slot != out[b].Slot {
			return out[a].Slot < out[b].Slot
		}
		return out[a].Lane < out[b].Lane
	})
	return out
}

// WriteJSONL writes one JSON object per event. Every object carries the
// same keys; inapplicable fields hold -1 (or 0 for value).
func (t *DecisionTracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range t.Events() {
		port := int(e.Lane)
		if port == t.ports {
			port = -1
		}
		_, err := fmt.Fprintf(bw,
			`{"slot":%d,"port":%d,"kind":%q,"reason":%q,"in":%d,"wave":%d,"ch":%d,"value":%d}`+"\n",
			e.Slot, port, e.Kind.String(), e.Reason.String(),
			e.Fiber, e.Wave, e.Channel, e.Value)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeSlotUS is the synthetic wall-clock width of one time slot in the
// Chrome trace timeline, in microseconds. Slots are logical time, not wall
// time; 10µs per slot keeps a few thousand slots readably zoomable.
const chromeSlotUS = 10

// WriteChromeTrace writes the events in the Chrome trace_event JSON array
// format, loadable in chrome://tracing or Perfetto. Each output port is a
// thread; EvSlotLatency becomes a complete ("X") span whose duration is
// the measured port wall time, every other event an instant ("i") mark at
// its slot.
func (t *DecisionTracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	first := true
	for _, e := range t.Events() {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		ts := e.Slot * chromeSlotUS
		tid := int(e.Lane)
		var err error
		if e.Kind == EvSlotLatency {
			durUS := float64(e.Value) / 1e3
			_, err = fmt.Fprintf(bw,
				`{"name":"slot","ph":"X","pid":0,"tid":%d,"ts":%d,"dur":%g,"args":{"slot":%d,"ns":%d}}`,
				tid, ts, durUS, e.Slot, e.Value)
		} else {
			name := e.Kind.String()
			if e.Kind == EvReject {
				name = "reject:" + e.Reason.String()
			}
			_, err = fmt.Fprintf(bw,
				`{"name":%q,"ph":"i","s":"t","pid":0,"tid":%d,"ts":%d,"args":{"slot":%d,"in":%d,"wave":%d,"ch":%d}}`,
				name, tid, ts, e.Slot, e.Fiber, e.Wave, e.Channel)
		}
		if err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
