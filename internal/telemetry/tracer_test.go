package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTracerOrderingAndLanes(t *testing.T) {
	tr := NewDecisionTracer(2, 16)
	if tr.Ports() != 2 || tr.SwitchLane() != 2 {
		t.Fatalf("ports/switch lane = %d/%d", tr.Ports(), tr.SwitchLane())
	}
	// Emit out of lane order; Events must come back slot-major.
	tr.Emit(1, Event{Slot: 2, Lane: 1, Kind: EvGrant})
	tr.Emit(0, Event{Slot: 1, Lane: 0, Kind: EvGrant})
	tr.Emit(2, Event{Slot: 1, Lane: 2, Kind: EvReject, Reason: ReasonInputBlocked})
	tr.Emit(0, Event{Slot: 2, Lane: 0, Kind: EvReject, Reason: ReasonLostMatching})
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("got %d events, want 4", len(ev))
	}
	wantOrder := []struct {
		slot int64
		lane int32
	}{{1, 0}, {1, 2}, {2, 0}, {2, 1}}
	for i, w := range wantOrder {
		if ev[i].Slot != w.slot || ev[i].Lane != w.lane {
			t.Errorf("event %d = slot %d lane %d, want slot %d lane %d",
				i, ev[i].Slot, ev[i].Lane, w.slot, w.lane)
		}
	}
	if tr.Emitted() != 4 || tr.Dropped() != 0 {
		t.Errorf("emitted/dropped = %d/%d", tr.Emitted(), tr.Dropped())
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tr := NewDecisionTracer(1, 4)
	for i := 0; i < 10; i++ {
		tr.Emit(0, Event{Slot: int64(i), Lane: 0, Kind: EvGrant})
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want 4", len(ev))
	}
	// The newest 4 survive, in order.
	for i, e := range ev {
		if e.Slot != int64(6+i) {
			t.Errorf("event %d has slot %d, want %d", i, e.Slot, 6+i)
		}
	}
	if tr.Emitted() != 10 || tr.Dropped() != 6 {
		t.Errorf("emitted/dropped = %d/%d, want 10/6", tr.Emitted(), tr.Dropped())
	}
	tr.Reset()
	if tr.Emitted() != 0 || len(tr.Events()) != 0 {
		t.Error("Reset did not clear the tracer")
	}
}

// TestTracerConcurrentLanes checks the single-writer-per-lane contract is
// race-free: one goroutine per lane emitting while another goroutine reads
// the live counters (run under -race in the gate).
func TestTracerConcurrentLanes(t *testing.T) {
	const lanes, events = 4, 1000
	tr := NewDecisionTracer(lanes, 64)
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = tr.Emitted()
				_ = tr.Dropped()
			}
		}
	}()
	var writers sync.WaitGroup
	for l := 0; l <= lanes; l++ {
		writers.Add(1)
		go func(l int) {
			defer writers.Done()
			for i := 0; i < events; i++ {
				tr.Emit(l, Event{Slot: int64(i), Lane: int32(l), Kind: EvGrant})
			}
		}(l)
	}
	writers.Wait()
	close(stop)
	reader.Wait()
	if tr.Emitted() != int64((lanes+1)*events) {
		t.Errorf("emitted = %d, want %d", tr.Emitted(), (lanes+1)*events)
	}
}

func TestTracerEmitNoAllocs(t *testing.T) {
	tr := NewDecisionTracer(1, 1<<10)
	e := Event{Slot: 1, Lane: 0, Kind: EvGrant, Fiber: 2, Wave: 3, Channel: 4}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(0, e)
	})
	if allocs != 0 {
		t.Errorf("Emit allocates %v per call, want 0", allocs)
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewDecisionTracer(2, 8)
	tr.Emit(0, Event{Slot: 0, Lane: 0, Kind: EvGrant, Fiber: 1, Wave: 2, Channel: 3})
	tr.Emit(2, Event{Slot: 0, Lane: 2, Kind: EvReject, Reason: ReasonInputBlocked, Fiber: 0, Wave: 1, Channel: -1})
	var sb strings.Builder
	if err := tr.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var rec struct {
		Slot   int64  `json:"slot"`
		Port   int    `json:"port"`
		Kind   string `json:"kind"`
		Reason string `json:"reason"`
		In     int    `json:"in"`
		Wave   int    `json:"wave"`
		Ch     int    `json:"ch"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if rec.Kind != "grant" || rec.In != 1 || rec.Wave != 2 || rec.Ch != 3 {
		t.Errorf("grant line = %+v", rec)
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if rec.Kind != "reject" || rec.Reason != "input-blocked" || rec.Port != -1 {
		t.Errorf("switch-lane reject line = %+v", rec)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewDecisionTracer(1, 8)
	tr.Emit(0, Event{Slot: 3, Lane: 0, Kind: EvSlotLatency, Fiber: -1, Wave: -1, Channel: -1, Value: 2500})
	tr.Emit(0, Event{Slot: 3, Lane: 0, Kind: EvGrant, Fiber: 0, Wave: 1, Channel: 1})
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("chrome trace not a JSON array: %v\n%s", err, sb.String())
	}
	if len(events) != 2 {
		t.Fatalf("got %d trace events, want 2", len(events))
	}
	var sawSpan, sawInstant bool
	for _, e := range events {
		switch e["ph"] {
		case "X":
			sawSpan = true
			if e["dur"].(float64) != 2.5 { // 2500ns = 2.5µs
				t.Errorf("span dur = %v, want 2.5", e["dur"])
			}
		case "i":
			sawInstant = true
			if e["name"] != "grant" {
				t.Errorf("instant name = %v", e["name"])
			}
		}
	}
	if !sawSpan || !sawInstant {
		t.Errorf("span=%v instant=%v, want both", sawSpan, sawInstant)
	}
}
