package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"wdmsched/internal/metrics"
)

func testServer(t *testing.T) (*Server, *Registry) {
	t.Helper()
	r := NewRegistry()
	var c metrics.Counter
	c.Add(5)
	r.Counter("srv_test_total", "server test counter", nil, &c)
	s, err := NewServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, r
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestServerMetricsEndpoint(t *testing.T) {
	s, _ := testServer(t)
	resp, body := get(t, "http://"+s.Addr()+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content-type %q", ct)
	}
	if !strings.Contains(body, "# TYPE srv_test_total counter") ||
		!strings.Contains(body, "srv_test_total 5") {
		t.Errorf("metrics body:\n%s", body)
	}
}

func TestServerSnapshotEndpoint(t *testing.T) {
	s, _ := testServer(t)
	resp, body := get(t, "http://"+s.Addr()+"/snapshot")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("snapshot not JSON: %v", err)
	}
	if len(snap.Metrics) != 1 || snap.Metrics[0].Name != "srv_test_total" || snap.Metrics[0].Value != 5 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestServerDebugEndpoints(t *testing.T) {
	s, _ := testServer(t)
	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		resp, body := get(t, "http://"+s.Addr()+path)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Errorf("%s: empty body", path)
		}
	}
	// expvar must carry the registry under the wdmsched key.
	_, vars := get(t, "http://"+s.Addr()+"/debug/vars")
	if !strings.Contains(vars, `"wdmsched"`) {
		t.Errorf("/debug/vars missing wdmsched var:\n%s", vars)
	}
}

func TestServerIndexAndNotFound(t *testing.T) {
	s, _ := testServer(t)
	resp, body := get(t, "http://"+s.Addr()+"/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index: status %d body %q", resp.StatusCode, body)
	}
	resp, _ = get(t, "http://"+s.Addr()+"/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: status %d, want 404", resp.StatusCode)
	}
}

func TestServerNilRegistry(t *testing.T) {
	if _, err := NewServer("127.0.0.1:0", nil); err == nil {
		t.Fatal("want error for nil registry")
	}
}

func TestServerClose(t *testing.T) {
	s, _ := testServer(t)
	addr := s.Addr()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("server still reachable after Close")
	}
}

// TestServerHealthEndpoints pins the probe contract: /healthz is pure
// liveness (always 200), /readyz defaults to ready and flips to 503 the
// moment the installed readiness callback reports false — the
// drain-aware signal load balancers key off.
func TestServerHealthEndpoints(t *testing.T) {
	s, _ := testServer(t)
	resp, body := get(t, "http://"+s.Addr()+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q, want 200 ok", resp.StatusCode, body)
	}
	resp, body = get(t, "http://"+s.Addr()+"/readyz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("/readyz with no callback = %d %q, want 200 ready", resp.StatusCode, body)
	}

	var draining atomic.Bool
	s.SetReadiness(func() bool { return !draining.Load() })
	resp, _ = get(t, "http://"+s.Addr()+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz before drain = %d, want 200", resp.StatusCode)
	}
	draining.Store(true)
	resp, body = get(t, "http://"+s.Addr()+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain = %d %q, want 503", resp.StatusCode, body)
	}
	// Liveness is unaffected by drain.
	resp, _ = get(t, "http://"+s.Addr()+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200", resp.StatusCode)
	}
}
