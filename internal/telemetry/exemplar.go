package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// Grant-path stage indices: the lifecycle of one accepted submit, in
// pipeline order. Every settled request is observed into each stage's
// duration histogram exactly once, so the per-stage counts reconcile
// with the verdict ledger (granted + contention-rejected).
const (
	// StageIngest: frame receipt off the socket to the start of
	// admission (decode, session write lock, service lock wait).
	StageIngest = iota
	// StageAdmission: this request's slice of the admission loop —
	// token bucket, queue-bound check, enqueue booking.
	StageAdmission
	// StageQueueWait: admitted to pulled out of the tenant FIFO into a
	// round batch (includes head-of-line skips on held channels).
	StageQueueWait
	// StageRoundBatch: batch assembly — strict-priority tenant scan and
	// packet build — up to the engine handoff.
	StageRoundBatch
	// StageEngineSchedule: the engine slot itself (RunSlot: scheduling,
	// matching, grant extraction).
	StageEngineSchedule
	// StageEgressWrite: verdict settle to the encoded verdicts frame
	// landing in the session's egress buffer (the socket write itself
	// is the session writer's business and is not attributed here).
	StageEgressWrite
	// NumGrantStages is the stage count; stage arrays index by the
	// constants above.
	NumGrantStages
)

// GrantStageNames are the canonical stage label values, indexed by the
// Stage* constants. They appear as the stage label of
// wdm_grant_stage_seconds and as the keys of an exemplar's stages map.
var GrantStageNames = [NumGrantStages]string{
	"ingest", "admission", "queue_wait", "round_batch", "engine_schedule", "egress_write",
}

// StageDurations is one request's per-stage waterfall in nanoseconds,
// indexed by the Stage* constants. It marshals as a name-keyed object so
// bundles and the /exemplars endpoint stay self-describing.
type StageDurations [NumGrantStages]int64

// MarshalJSON renders the waterfall as {"ingest":ns,...} without
// reflection.
func (s StageDurations) MarshalJSON() ([]byte, error) {
	buf := make([]byte, 0, 24*NumGrantStages)
	buf = append(buf, '{')
	for i, ns := range s {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, '"')
		buf = append(buf, GrantStageNames[i]...)
		buf = append(buf, '"', ':')
		buf = strconv.AppendInt(buf, ns, 10)
	}
	return append(buf, '}'), nil
}

// UnmarshalJSON accepts the object form; unknown keys are ignored and
// missing stages read as zero.
func (s *StageDurations) UnmarshalJSON(b []byte) error {
	var m map[string]int64
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	for i, name := range GrantStageNames {
		s[i] = m[name]
	}
	return nil
}

// Total returns the sum of the stage durations.
func (s StageDurations) Total() int64 {
	var t int64
	for _, ns := range s {
		t += ns
	}
	return t
}

// Exemplar is one retained slow request: identity and QoS labels plus
// the full stage waterfall, enough to reconstruct a flow-linked span
// chain in a Chrome trace without any other context.
type Exemplar struct {
	ID          uint64         `json:"id"`
	Tenant      string         `json:"tenant"`
	Class       uint8          `json:"class"`
	Slot        int64          `json:"slot"`
	Verdict     string         `json:"verdict"`
	WindowStart int64          `json:"window_start"`
	StartNS     int64          `json:"start_ns"` // receipt stamp on the span clock
	TotalNS     int64          `json:"total_ns"` // receipt to egress enqueue
	Stages      StageDurations `json:"stages"`
}

// ExemplarRing retains the K slowest requests of the current slot window
// plus the frozen retained set of the previous window, so a scrape right
// after a rollover still sees a full window of exemplars. Offer is
// allocation-free after construction: the retained set is a small
// insertion-sorted array (ascending by total latency) in preallocated
// backing storage, and sub-threshold offers return after one compare.
// A light mutex guards it — offers come from the grant round loop off
// the engine hot path, reads from HTTP scrapes and bundle dumps.
type ExemplarRing struct {
	mu       sync.Mutex
	k        int
	window   int64      // window width in slots
	winStart int64      // first slot of the current window
	cur      []Exemplar // current window, ascending by TotalNS
	prev     []Exemplar // previous window, frozen, slowest first
	offered  int64
	entered  int64 // offers that made the retained set
	rolls    int64
}

// NewExemplarRing builds a ring retaining the k slowest requests per
// windowSlots-slot window (defaults: 16 and 1024 for non-positive
// arguments).
func NewExemplarRing(k int, windowSlots int64) *ExemplarRing {
	if k <= 0 {
		k = 16
	}
	if windowSlots <= 0 {
		windowSlots = 1024
	}
	return &ExemplarRing{
		k:      k,
		window: windowSlots,
		cur:    make([]Exemplar, 0, k),
		prev:   make([]Exemplar, 0, k),
	}
}

// K returns the per-window retention bound.
func (r *ExemplarRing) K() int { return r.k }

// WindowSlots returns the window width in slots.
func (r *ExemplarRing) WindowSlots() int64 { return r.window }

// Offer considers one settled request for retention. When e.Slot crosses
// into a new window the current retained set is frozen as the previous
// window first. Allocation-free; safe for concurrent use.
func (r *ExemplarRing) Offer(e Exemplar) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.offered++
	if e.Slot >= r.winStart+r.window {
		r.rollLocked(e.Slot)
	}
	e.WindowStart = r.winStart
	n := len(r.cur)
	if n == r.k {
		if e.TotalNS <= r.cur[0].TotalNS {
			return // faster than everything retained
		}
		copy(r.cur, r.cur[1:]) // evict the fastest
		n--
		r.cur = r.cur[:n]
	}
	i := n
	r.cur = r.cur[:n+1]
	for i > 0 && r.cur[i-1].TotalNS > e.TotalNS {
		r.cur[i] = r.cur[i-1]
		i--
	}
	r.cur[i] = e
	r.entered++
}

// rollLocked freezes the current window into prev (slowest first) and
// aligns a fresh window containing slot.
func (r *ExemplarRing) rollLocked(slot int64) {
	r.prev = r.prev[:0]
	for i := len(r.cur) - 1; i >= 0; i-- {
		r.prev = append(r.prev, r.cur[i])
	}
	r.cur = r.cur[:0]
	r.winStart = slot - slot%r.window
	r.rolls++
}

// Snapshot copies the retained exemplars: the current window slowest
// first, then the frozen previous window slowest first.
func (r *ExemplarRing) Snapshot() []Exemplar {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Exemplar, 0, len(r.cur)+len(r.prev))
	for i := len(r.cur) - 1; i >= 0; i-- {
		out = append(out, r.cur[i])
	}
	return append(out, r.prev...)
}

// Offered returns the total requests offered to the ring.
func (r *ExemplarRing) Offered() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.offered
}

// Dropped returns the offers that never entered the retained set (faster
// than the K slowest of their window at offer time).
func (r *ExemplarRing) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.offered - r.entered
}

// Occupancy returns the current window's fill fraction of K.
func (r *ExemplarRing) Occupancy() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return float64(len(r.cur)) / float64(r.k)
}

// WriteJSONL writes the retained exemplars (Snapshot order) as JSONL for
// incident bundles.
func (r *ExemplarRing) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range r.Snapshot() {
		raw, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if _, err := bw.Write(raw); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadExemplarsJSONL parses a JSONL stream of exemplars (the bundle
// entry / wdmtrace input format).
func ReadExemplarsJSONL(rd io.Reader) ([]Exemplar, error) {
	var out []Exemplar
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Exemplar
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("exemplars line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
