package telemetry

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"wdmsched/internal/metrics"
)

// TestPrometheusLabelEscaping: backslash, double quote and newline in a
// label value must escape exactly per the text exposition format —
// `\\`, `\"` and `\n` — and the HELP string must escape backslash and
// newline (but NOT quotes, which are legal there).
func TestPrometheusLabelEscaping(t *testing.T) {
	snapshot := []Metric{{
		Name: "wdm_test_escapes_total",
		Help: "line one\nline two with \\ and \"quotes\"",
		Kind: "counter",
		Labels: []Label{
			{"newline", "a\nb"},
			{"quote", `say "hi"`},
			{"backslash", `c:\path\x`},
		},
		Value: 7,
	}}
	var b strings.Builder
	if err := WritePrometheus(&b, snapshot); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wantLines := []string{
		`# HELP wdm_test_escapes_total line one\nline two with \\ and "quotes"`,
		`# TYPE wdm_test_escapes_total counter`,
		`wdm_test_escapes_total{newline="a\nb",quote="say \"hi\"",backslash="c:\\path\\x"} 7`,
	}
	gotLines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(gotLines) != len(wantLines) {
		t.Fatalf("got %d lines, want %d:\n%s", len(gotLines), len(wantLines), out)
	}
	for i, want := range wantLines {
		if gotLines[i] != want {
			t.Errorf("line %d:\n got %q\nwant %q", i, gotLines[i], want)
		}
	}
	// No raw control characters may survive anywhere in the exposition.
	if strings.ContainsAny(out[:len(out)-1], "\r") || strings.Count(out, "\n") != len(wantLines) {
		t.Fatalf("raw newline leaked into a value:\n%q", out)
	}
}

// TestPrometheusEmptyLabels: a series with no labels must render bare —
// no "{}" — for the sample line and every histogram expansion.
func TestPrometheusEmptyLabels(t *testing.T) {
	snapshot := []Metric{
		{Name: "wdm_test_plain_total", Kind: "counter", Value: 3},
		{
			Name: "wdm_test_plain_seconds", Kind: "histogram",
			Buckets: []Bucket{{Upper: 0.1, Count: 2}, {Upper: 1, Count: 1}},
			Count:   4, Sum: 2.5,
		},
	}
	var b strings.Builder
	if err := WritePrometheus(&b, snapshot); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, "{}") {
		t.Fatalf("empty label set rendered as {}:\n%s", out)
	}
	for _, want := range []string{
		"wdm_test_plain_total 3\n",
		`wdm_test_plain_seconds_bucket{le="0.1"} 2` + "\n",
		`wdm_test_plain_seconds_bucket{le="+Inf"} 4` + "\n",
		"wdm_test_plain_seconds_sum 2.5\n",
		"wdm_test_plain_seconds_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestPrometheusHistogramCumulativeInvariants: bucket counts must be
// cumulative and monotonically non-decreasing, the +Inf bucket must always
// be present and equal _count, and the invariants must hold with labels
// attached (le composes with existing labels, in order).
func TestPrometheusHistogramCumulativeInvariants(t *testing.T) {
	snapshot := []Metric{{
		Name:   "wdm_test_lat_seconds",
		Kind:   "histogram",
		Labels: []Label{{"stage", "encode"}},
		Buckets: []Bucket{
			{Upper: 0.001, Count: 5},
			{Upper: 0.01, Count: 0}, // empty bucket: cumulative must not dip
			{Upper: 0.1, Count: 3},
		},
		Count: 10, // one observation beyond the last finite bucket
		Sum:   0.42,
	}}
	var b strings.Builder
	if err := WritePrometheus(&b, snapshot); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	var prev int64 = -1
	var infSeen bool
	var infVal int64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "wdm_test_lat_seconds_bucket{") {
			continue
		}
		if !strings.Contains(line, `stage="encode"`) {
			t.Fatalf("bucket line lost its series labels: %q", line)
		}
		val, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if val < prev {
			t.Fatalf("cumulative bucket count decreased (%d after %d): %q", val, prev, line)
		}
		prev = val
		if strings.Contains(line, `le="+Inf"`) {
			infSeen, infVal = true, val
		}
	}
	if !infSeen {
		t.Fatalf("no +Inf bucket in:\n%s", out)
	}
	if infVal != 10 {
		t.Fatalf("+Inf bucket %d, want the observation count 10", infVal)
	}
	if !strings.Contains(out, `wdm_test_lat_seconds_count{stage="encode"} 10`) {
		t.Fatalf("_count must equal the +Inf bucket:\n%s", out)
	}
	// Finite buckets: 5, 5, 8 — the +Inf bucket (10) must dominate them.
	if prev != infVal {
		t.Fatalf("+Inf bucket %d is not the final cumulative value %d", infVal, prev)
	}
}

// TestPrometheusLiveHistogramConformance runs the same invariants against
// a real DurationHistogram registered in a Registry, so the conformance
// holds for what the node actually serves, not just hand-built snapshots.
func TestPrometheusLiveHistogramConformance(t *testing.T) {
	reg := NewRegistry()
	h := metrics.NewDurationHistogram()
	reg.DurationHistogram("wdm_test_live_seconds", "live conformance", nil, h)
	for _, d := range []time.Duration{500, 2_000, 150_000, 9_000_000, 3_000_000_000} {
		h.Observe(d)
	}
	var b strings.Builder
	if err := WritePrometheus(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	var prev int64 = -1
	n := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "wdm_test_live_seconds_bucket{") {
			continue
		}
		n++
		val, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if val < prev {
			t.Fatalf("live histogram bucket decreased: %q", line)
		}
		prev = val
	}
	if n == 0 {
		t.Fatalf("no bucket lines in:\n%s", out)
	}
	if prev != 5 {
		t.Fatalf("+Inf cumulative %d, want 5 observations", prev)
	}
}
