// Package telemetry provides the observability layer for the simulator: a
// metric registry that unifies the primitives in internal/metrics behind
// named, labeled, concurrency-safe registration; Prometheus-text and JSON
// exposition; an opt-in HTTP server with pprof and expvar endpoints; and
// an allocation-free per-slot scheduling decision tracer.
//
// The registry is pull-based: registering a metric stores a collector
// closure, and Snapshot() invokes every collector to produce a consistent
// point-in-time view. Collectors read atomically-updated primitives, so a
// scrape can run while the simulation hot path is writing.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"wdmsched/internal/metrics"
)

// Kind classifies a registered metric for exposition.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
	KindSummary
)

// String returns the Prometheus type name for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	case KindSummary:
		return "summary"
	}
	return "untyped"
}

// Label is one name/value pair attached to a metric series.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Bucket is one non-cumulative histogram bucket: Count observations with
// value ≤ Upper (and greater than the previous bucket's Upper). The
// infinite bucket is implicit — a Metric's Count covers all observations —
// so Upper is always finite and the snapshot is JSON-safe.
type Bucket struct {
	Upper float64 `json:"upper"`
	Count int64   `json:"count"`
}

// Metric is a point-in-time sample of one registered series.
type Metric struct {
	Name    string   `json:"name"`
	Help    string   `json:"help,omitempty"`
	Kind    string   `json:"kind"`
	Labels  []Label  `json:"labels,omitempty"`
	Value   float64  `json:"value"`             // counter/gauge value; summary mean
	Count   int64    `json:"count,omitempty"`   // histogram/summary observation count
	Sum     float64  `json:"sum,omitempty"`     // histogram sum of observations
	Stddev  float64  `json:"stddev,omitempty"`  // summary only
	Buckets []Bucket `json:"buckets,omitempty"` // histogram only, non-cumulative
}

// entry is one registered series: static identity plus a collector that
// fills in the live sample.
type entry struct {
	name    string
	help    string
	kind    Kind
	labels  []Label
	key     string // name + canonical label string, for duplicate detection
	collect func(*Metric)
}

// Registry holds named metric series. All methods are safe for concurrent
// use. Registering the same name+labels twice panics: duplicate series
// indicate a wiring bug and would silently shadow each other otherwise.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	seen    map[string]struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{seen: make(map[string]struct{})}
}

// labelKey renders labels canonically for duplicate detection and sorting.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

// register validates identity and stores the collector.
func (r *Registry) register(name, help string, kind Kind, labels []Label, collect func(*Metric)) {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	cp := make([]Label, len(labels))
	copy(cp, labels)
	key := name + "{" + labelKey(cp) + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.seen[key]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %s", key))
	}
	r.seen[key] = struct{}{}
	r.entries = append(r.entries, &entry{
		name: name, help: help, kind: kind, labels: cp, key: key, collect: collect,
	})
}

// CounterFunc registers a counter whose value is produced by fn at scrape
// time. fn must be safe to call concurrently with the simulation.
func (r *Registry) CounterFunc(name, help string, labels []Label, fn func() int64) {
	r.register(name, help, KindCounter, labels, func(m *Metric) {
		m.Value = float64(fn())
	})
}

// Counter registers an existing metrics.Counter.
func (r *Registry) Counter(name, help string, labels []Label, c *metrics.Counter) {
	r.CounterFunc(name, help, labels, c.Value)
}

// GaugeFunc registers a gauge produced by fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels []Label, fn func() float64) {
	r.register(name, help, KindGauge, labels, func(m *Metric) {
		m.Value = fn()
	})
}

// Gauge registers an existing metrics.Gauge.
func (r *Registry) Gauge(name, help string, labels []Label, g *metrics.Gauge) {
	r.GaugeFunc(name, help, labels, g.Value)
}

// HistogramFunc registers a histogram whose snapshot is produced by fn at
// scrape time; use it to merge per-port histograms into one series.
func (r *Registry) HistogramFunc(name, help string, labels []Label, fn func() metrics.HistogramSnapshot) {
	r.register(name, help, KindHistogram, labels, func(m *Metric) {
		s := fn()
		m.Count = s.Count
		m.Sum = float64(s.Sum)
		m.Buckets = m.Buckets[:0]
		for v, c := range s.Buckets {
			if c != 0 {
				m.Buckets = append(m.Buckets, Bucket{Upper: float64(v), Count: c})
			}
		}
	})
}

// Histogram registers an existing metrics.Histogram.
func (r *Registry) Histogram(name, help string, labels []Label, h *metrics.Histogram) {
	r.HistogramFunc(name, help, labels, h.Snapshot)
}

// DurationHistogram registers an existing metrics.DurationHistogram; the
// series is exposed in seconds with power-of-two bucket bounds.
func (r *Registry) DurationHistogram(name, help string, labels []Label, h *metrics.DurationHistogram) {
	r.register(name, help, KindHistogram, labels, func(m *Metric) {
		m.Count = h.Count()
		m.Sum = h.Sum().Seconds()
		m.Buckets = m.Buckets[:0]
		for b := 0; b < h.NumBuckets()-1; b++ { // top bucket folds into +Inf
			if c := h.BucketCount(b); c != 0 {
				m.Buckets = append(m.Buckets, Bucket{
					Upper: float64(metrics.BucketUpperNS(b)) / 1e9,
					Count: c,
				})
			}
		}
	})
}

// Welford registers an existing metrics.Welford as a summary: the metric
// value is the running mean, with count and standard deviation alongside.
func (r *Registry) Welford(name, help string, labels []Label, w *metrics.Welford) {
	r.register(name, help, KindSummary, labels, func(m *Metric) {
		m.Value = w.Mean()
		m.Count = w.N()
		m.Stddev = w.Stddev()
	})
}

// Snapshot samples every registered series, sorted by name then labels so
// the output is deterministic and series of one name are contiguous.
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	entries := make([]*entry, len(r.entries))
	copy(entries, r.entries)
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].name != entries[j].name {
			return entries[i].name < entries[j].name
		}
		return entries[i].key < entries[j].key
	})
	out := make([]Metric, len(entries))
	for i, e := range entries {
		m := &out[i]
		m.Name, m.Help, m.Kind, m.Labels = e.name, e.help, e.kind.String(), e.labels
		e.collect(m)
	}
	return out
}

// Len returns the number of registered series.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}
