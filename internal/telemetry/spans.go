package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// spanEpoch anchors the process-local monotonic span clock. Spans from
// different processes live on different epochs; the cluster controller
// estimates each node's offset from piggybacked frame timestamps so
// wdmtrace -merge can place all spans on one timeline.
var spanEpoch = time.Now()

// NowNS returns nanoseconds since the process-local span epoch. It is
// monotonic (immune to wall-clock steps) and allocation-free, so the
// scheduling hot paths can stamp spans directly.
func NowNS() int64 { return time.Since(spanEpoch).Nanoseconds() }

// SpanStage identifies which phase of a distributed scheduling slot a
// span covers. The controller-side pipeline is prepare → encode → RPC →
// commit; inside each RPC the node runs decode → schedule → encode.
type SpanStage uint8

const (
	// StageSlot: the whole remote scheduling phase of one slot
	// (controller side, prepare start to commit end).
	StageSlot SpanStage = iota + 1
	// StagePrepare: the switch derives every port's request vector.
	StagePrepare
	// StageEncode: a schedule frame is built (controller side).
	StageEncode
	// StageRPC: a schedule RPC is in flight — send to grants received.
	StageRPC
	// StageDecode: the node decodes a schedule frame.
	StageDecode
	// StageSchedule: one port's matching computation (node side, or the
	// controller's local path).
	StageSchedule
	// StageNodeEncode: the node encodes its grants reply.
	StageNodeEncode
	// StageCommit: the controller merges grants into the switch state.
	StageCommit
	// StageFallback: a link's items were scheduled locally after its
	// node missed the slot deadline.
	StageFallback
)

// String returns a stable lowercase name for the stage.
func (s SpanStage) String() string {
	switch s {
	case StageSlot:
		return "slot"
	case StagePrepare:
		return "prepare"
	case StageEncode:
		return "encode"
	case StageRPC:
		return "rpc"
	case StageDecode:
		return "decode"
	case StageSchedule:
		return "schedule"
	case StageNodeEncode:
		return "node-encode"
	case StageCommit:
		return "commit"
	case StageFallback:
		return "fallback"
	}
	return "unknown"
}

// ParseSpanStage maps a stage name back to its value (0 when unknown).
func ParseSpanStage(name string) SpanStage {
	for s := StageSlot; s <= StageFallback; s++ {
		if s.String() == name {
			return s
		}
	}
	return 0
}

// Span is one timed phase of a distributed scheduling slot. Start is in
// nanoseconds on the emitting process's span clock (NowNS); ID correlates
// the spans of one RPC across processes (0 for purely local stages).
type Span struct {
	Slot  int64
	Lane  int32 // emitting lane: 0 = slot/frame lane, 1+i = link or port i
	Stage SpanStage
	Port  int32 // output port, -1 when not port-scoped
	ID    uint64
	Start int64 // ns since the process span epoch
	Dur   int64 // ns
}

// spanRing is one lane's bounded span buffer. Unlike the decision
// tracer's single-writer lanes, span lanes take a (never-contended in
// steady state) mutex per emission: a node must serve its /spans endpoint
// while sessions are actively scheduling, so reads have to synchronize
// with writers without waiting for a run barrier.
type spanRing struct {
	mu    sync.Mutex
	spans []Span
	total int64
	_     [32]byte // keep neighboring lanes off one cache line
}

// SpanTracer records distributed-tracing spans into per-lane bounded ring
// buffers. Emission is allocation-free; when a lane overflows, its oldest
// spans are overwritten (and counted as dropped). Lanes can be grown with
// EnsureLanes as the topology becomes known (a node learns its port count
// only at configure time).
type SpanTracer struct {
	mu    sync.RWMutex
	cap   int
	lanes []*spanRing
}

// NewSpanTracer builds a tracer with the given initial lane count,
// keeping up to perLaneCap spans per lane (rounded up to 1).
func NewSpanTracer(lanes, perLaneCap int) *SpanTracer {
	if lanes < 1 {
		lanes = 1
	}
	if perLaneCap < 1 {
		perLaneCap = 1
	}
	t := &SpanTracer{cap: perLaneCap}
	t.EnsureLanes(lanes)
	return t
}

// EnsureLanes grows the tracer to at least n lanes. Call it from setup
// paths (configure, controller construction) so Emit never allocates.
func (t *SpanTracer) EnsureLanes(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.lanes) < n {
		t.lanes = append(t.lanes, &spanRing{spans: make([]Span, t.cap)})
	}
}

// Lanes returns the current lane count.
func (t *SpanTracer) Lanes() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.lanes)
}

// Emit records one span on lane l. Spans to lanes that were never ensured
// are silently dropped rather than allocating on the hot path.
func (t *SpanTracer) Emit(l int, s Span) {
	t.mu.RLock()
	if l < 0 || l >= len(t.lanes) {
		t.mu.RUnlock()
		return
	}
	r := t.lanes[l]
	t.mu.RUnlock()
	r.mu.Lock()
	r.spans[r.total%int64(len(r.spans))] = s
	r.total++
	r.mu.Unlock()
}

// Emitted returns the total number of spans emitted across lanes.
func (t *SpanTracer) Emitted() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var n int64
	for _, r := range t.lanes {
		r.mu.Lock()
		n += r.total
		r.mu.Unlock()
	}
	return n
}

// Dropped returns how many spans were overwritten by ring wraparound.
func (t *SpanTracer) Dropped() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var n int64
	for _, r := range t.lanes {
		r.mu.Lock()
		if r.total > int64(t.cap) {
			n += r.total - int64(t.cap)
		}
		r.mu.Unlock()
	}
	return n
}

// Reset clears all lanes.
func (t *SpanTracer) Reset() {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.lanes {
		r.mu.Lock()
		r.total = 0
		r.mu.Unlock()
	}
}

// Spans returns a snapshot of the retained spans, ordered by start time
// (then lane). Safe to call while emitters are running.
func (t *SpanTracer) Spans() []Span {
	t.mu.RLock()
	lanes := make([]*spanRing, len(t.lanes))
	copy(lanes, t.lanes)
	t.mu.RUnlock()
	var out []Span
	for _, r := range lanes {
		r.mu.Lock()
		size := int64(len(r.spans))
		switch {
		case r.total == 0:
		case r.total <= size:
			out = append(out, r.spans[:r.total]...)
		default:
			start := r.total % size
			out = append(out, r.spans[start:]...)
			out = append(out, r.spans[:start]...)
		}
		r.mu.Unlock()
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Start != out[b].Start {
			return out[a].Start < out[b].Start
		}
		return out[a].Lane < out[b].Lane
	})
	return out
}

// WriteJSONL writes one JSON object per retained span — the dump format
// wdmtrace -merge consumes (preceded by a process meta line written by
// the dumping command).
func (t *SpanTracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, s := range t.Spans() {
		_, err := fmt.Fprintf(bw,
			`{"slot":%d,"lane":%d,"stage":%q,"port":%d,"id":%d,"start":%d,"dur":%d}`+"\n",
			s.Slot, s.Lane, s.Stage.String(), s.Port, s.ID, s.Start, s.Dur)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}
