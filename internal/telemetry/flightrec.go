package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
	"time"

	"wdmsched/internal/metrics"
)

// FlightRecorder is the always-on black box of a running switch: a set of
// bounded, pre-allocated, single-writer ring buffers that continuously
// retain the recent past — per-port scheduling decisions, periodic
// counter snapshots, fault-mask transitions and (in cluster mode)
// per-node RPC/health samples — so that when something goes wrong the last
// N slots of history can be dumped into an incident bundle without having
// recorded the whole run.
//
// Writer discipline mirrors the DecisionTracer it embeds: every ring has
// exactly one writer (the slot-driving goroutine; the decision lanes are
// written by their port workers), emission is allocation-free after
// EnsureShape, and the per-ring totals are atomic only so live telemetry
// scrapes can read occupancy and drop counts mid-run. Ring *contents* are
// read at slot boundaries only (a dump runs on the slot loop between
// RunSlot calls), which is what keeps recording off the hot path and the
// race detector quiet.
type FlightRecorder struct {
	cfg       FlightRecorderConfig
	decisions *DecisionTracer
	spans     *SpanTracer

	snaps     []SnapshotRecord
	snapTotal atomic.Int64

	faults     []FaultTransition
	faultTotal atomic.Int64

	nodes     []NodeSample
	nodeTotal atomic.Int64

	exemplars *ExemplarRing

	// Dump health, exposed as wdm_recorder_* gauges.
	dumps      atomic.Int64
	dumpNS     atomic.Int64 // cumulative bundle-dump wall time
	lastDumpNS atomic.Int64 // latency of the most recent dump

	// pending is an asynchronous dump request (a SIGQUIT handler sets it;
	// the slot loop honors it at the next slot boundary). 0 = none.
	pending atomic.Int32
}

// FlightRecorderConfig sizes the recorder's rings. Zero values pick the
// defaults noted on each field.
type FlightRecorderConfig struct {
	// Ports is the switch's output-fiber count (required): the decision
	// ring gets one lane per port plus the switch lane.
	Ports int
	// DecisionCap is the decision events retained per lane (default 4096).
	DecisionCap int
	// SnapshotCap is the counter snapshots retained (default 64).
	SnapshotCap int
	// SnapshotEvery is the slot cadence of counter snapshots (default 1024).
	SnapshotEvery int64
	// FaultCap is the fault-mask transitions retained (default 4096).
	FaultCap int
	// NodeCap is the per-node cluster samples retained (default 1024).
	NodeCap int
	// ExemplarK is the slowest-request exemplars retained per window by
	// the grant-path exemplar ring (default 16).
	ExemplarK int
	// ExemplarWindow is the exemplar window width in slots (default
	// SnapshotEvery): exemplars compete within a window, and the previous
	// window's retained set stays readable until the next rollover.
	ExemplarWindow int64
	// Spans optionally attaches a cluster span tracer so bundles can carry
	// the span rings alongside the recorder's own.
	Spans *SpanTracer
}

// SnapshotRecord is one retained counter snapshot: the cumulative switch
// statistics as of Slot, the flight-recorder twin of interconnect.Snapshot
// (kept as a plain struct here so telemetry stays dependency-free).
type SnapshotRecord struct {
	Slot             int64   `json:"slot"`
	Offered          int64   `json:"offered"`
	Granted          int64   `json:"granted"`
	InputBlocked     int64   `json:"input_blocked"`
	OutputDropped    int64   `json:"output_dropped"`
	Preempted        int64   `json:"preempted"`
	BusyChannelSlots int64   `json:"busy_channel_slots"`
	FaultLostGrants  int64   `json:"fault_lost_grants"`
	FaultKilled      int64   `json:"fault_killed"`
	PerInput         []int64 `json:"per_input"`
	PerChannel       []int64 `json:"per_channel"`
}

// FaultTransition is one observed change of a channel's fault state: at
// Slot, output port Port's channel Channel moved From → To (the
// core.ChannelState values as raw bytes, so telemetry does not import the
// scheduler core).
type FaultTransition struct {
	Slot    int64 `json:"slot"`
	Port    int32 `json:"port"`
	Channel int32 `json:"channel"`
	From    uint8 `json:"from"`
	To      uint8 `json:"to"`
}

// NodeSample is one cluster health sample: node Node's link state at Slot
// plus the controller-wide RPC counters at that instant (the cluster
// runtime aggregates transport counters across links, so the counters are
// controller totals, not per-node splits).
type NodeSample struct {
	Slot          int64  `json:"slot"`
	Node          int32  `json:"node"`
	Healthy       bool   `json:"healthy"`
	RemoteItems   int64  `json:"remote_items"`
	FallbackItems int64  `json:"fallback_items"`
	Retries       int64  `json:"retries"`
	Reconnects    int64  `json:"reconnects"`
	BytesSent     int64  `json:"bytes_sent"`
	BytesReceived int64  `json:"bytes_received"`
	RPCP99NS      int64  `json:"rpc_p99_ns"`
	Addr          string `json:"addr,omitempty"`
}

// NewFlightRecorder builds a recorder with every ring pre-allocated.
func NewFlightRecorder(cfg FlightRecorderConfig) *FlightRecorder {
	if cfg.Ports < 1 {
		panic("telemetry: flight recorder needs at least one port")
	}
	if cfg.DecisionCap <= 0 {
		cfg.DecisionCap = 4096
	}
	if cfg.SnapshotCap <= 0 {
		cfg.SnapshotCap = 64
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 1024
	}
	if cfg.FaultCap <= 0 {
		cfg.FaultCap = 4096
	}
	if cfg.NodeCap <= 0 {
		cfg.NodeCap = 1024
	}
	if cfg.ExemplarWindow <= 0 {
		cfg.ExemplarWindow = cfg.SnapshotEvery
	}
	return &FlightRecorder{
		cfg:       cfg,
		decisions: NewDecisionTracer(cfg.Ports, cfg.DecisionCap),
		spans:     cfg.Spans,
		snaps:     make([]SnapshotRecord, cfg.SnapshotCap),
		faults:    make([]FaultTransition, cfg.FaultCap),
		nodes:     make([]NodeSample, cfg.NodeCap),
		exemplars: NewExemplarRing(cfg.ExemplarK, cfg.ExemplarWindow),
	}
}

// Decisions returns the embedded decision tracer; attach it (or let the
// switch attach it) as the SwitchConfig.Trace sink so scheduling decisions
// land in the recorder's rings.
func (r *FlightRecorder) Decisions() *DecisionTracer { return r.decisions }

// Spans returns the optional attached span tracer (nil outside cluster
// runs).
func (r *FlightRecorder) Spans() *SpanTracer { return r.spans }

// SnapshotEvery returns the snapshot cadence in slots.
func (r *FlightRecorder) SnapshotEvery() int64 { return r.cfg.SnapshotEvery }

// Exemplars returns the slowest-request exemplar ring. Unlike the other
// rings it is internally locked, so it may be read at any time.
func (r *FlightRecorder) Exemplars() *ExemplarRing { return r.exemplars }

// EnsureShape pre-allocates the per-input and per-channel slices of every
// snapshot ring entry for an n×n switch with k channels per fiber, so
// BeginSnapshot/CommitSnapshot never allocate on the slot loop.
func (r *FlightRecorder) EnsureShape(n, k int) {
	for i := range r.snaps {
		if cap(r.snaps[i].PerInput) < n {
			r.snaps[i].PerInput = make([]int64, n)
		}
		if cap(r.snaps[i].PerChannel) < k {
			r.snaps[i].PerChannel = make([]int64, k)
		}
		r.snaps[i].PerInput = r.snaps[i].PerInput[:n]
		r.snaps[i].PerChannel = r.snaps[i].PerChannel[:k]
	}
}

// BeginSnapshot returns the ring entry the next snapshot should be written
// into; fill it (EnsureShape has pre-sized its slices) and publish with
// CommitSnapshot. Single writer: the slot-driving goroutine.
func (r *FlightRecorder) BeginSnapshot() *SnapshotRecord {
	return &r.snaps[r.snapTotal.Load()%int64(len(r.snaps))]
}

// CommitSnapshot publishes the entry returned by the matching
// BeginSnapshot.
func (r *FlightRecorder) CommitSnapshot() { r.snapTotal.Add(1) }

// RecordFaultTransition appends one channel-state change to the fault
// ring. Single writer: the slot-driving goroutine (the switch diffs masks
// during its fault phase).
func (r *FlightRecorder) RecordFaultTransition(t FaultTransition) {
	n := r.faultTotal.Load()
	r.faults[n%int64(len(r.faults))] = t
	r.faultTotal.Store(n + 1)
}

// RecordNodeSample appends one cluster node health sample. Single writer:
// the run-driving goroutine.
func (r *FlightRecorder) RecordNodeSample(s NodeSample) {
	n := r.nodeTotal.Load()
	r.nodes[n%int64(len(r.nodes))] = s
	r.nodeTotal.Store(n + 1)
}

// RequestDump asks the slot loop to dump an incident bundle at the next
// slot boundary — the asynchronous trigger path (SIGQUIT handlers). It is
// a no-op if a request is already pending.
func (r *FlightRecorder) RequestDump() { r.pending.Store(1) }

// TakeDumpRequest consumes a pending dump request, reporting whether one
// was set. The slot loop calls this between slots.
func (r *FlightRecorder) TakeDumpRequest() bool { return r.pending.Swap(0) != 0 }

// NoteDump records one completed bundle dump and its wall-clock latency
// for the recorder health gauges.
func (r *FlightRecorder) NoteDump(d time.Duration) {
	r.dumps.Add(1)
	r.dumpNS.Add(int64(d))
	r.lastDumpNS.Store(int64(d))
}

// Dumps returns the number of bundle dumps recorded via NoteDump.
func (r *FlightRecorder) Dumps() int64 { return r.dumps.Load() }

// LastDumpLatency returns the wall time of the most recent bundle dump.
func (r *FlightRecorder) LastDumpLatency() time.Duration {
	return time.Duration(r.lastDumpNS.Load())
}

// ringStats summarizes one ring for the health gauges.
func ringStats(total int64, capacity int) (occupancy float64, dropped int64) {
	if total >= int64(capacity) {
		return 1, total - int64(capacity)
	}
	return float64(total) / float64(capacity), 0
}

// Snapshots returns the retained snapshot records oldest-first. Call at a
// slot boundary only (it reads ring memory the slot loop writes).
func (r *FlightRecorder) Snapshots() []SnapshotRecord {
	return retained(r.snaps, r.snapTotal.Load())
}

// FaultTransitions returns the retained transitions oldest-first. Slot
// boundaries only.
func (r *FlightRecorder) FaultTransitions() []FaultTransition {
	return retained(r.faults, r.faultTotal.Load())
}

// NodeSamples returns the retained node samples oldest-first. Slot
// boundaries only.
func (r *FlightRecorder) NodeSamples() []NodeSample {
	return retained(r.nodes, r.nodeTotal.Load())
}

// retained copies the live window of a ring, oldest-first.
func retained[T any](ring []T, total int64) []T {
	size := int64(len(ring))
	switch {
	case total == 0:
		return nil
	case total <= size:
		return append([]T(nil), ring[:total]...)
	default:
		start := total % size
		out := make([]T, 0, size)
		out = append(out, ring[start:]...)
		return append(out, ring[:start]...)
	}
}

// NearestSnapshotBefore returns the retained snapshot with the largest
// Slot ≤ slot, or nil when none is retained that early. Slot boundaries
// only.
func (r *FlightRecorder) NearestSnapshotBefore(slot int64) *SnapshotRecord {
	var best *SnapshotRecord
	for _, s := range r.Snapshots() {
		if s.Slot <= slot {
			cp := s
			cp.PerInput = append([]int64(nil), s.PerInput...)
			cp.PerChannel = append([]int64(nil), s.PerChannel...)
			best = &cp
		}
	}
	return best
}

// WriteSnapshotsJSONL writes the retained snapshots as JSONL, oldest
// first. Slot boundaries only.
func (r *FlightRecorder) WriteSnapshotsJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, s := range r.Snapshots() {
		if _, err := fmt.Fprintf(bw,
			`{"slot":%d,"offered":%d,"granted":%d,"input_blocked":%d,"output_dropped":%d,"preempted":%d,"busy_channel_slots":%d,"fault_lost_grants":%d,"fault_killed":%d,"per_input":%s,"per_channel":%s}`+"\n",
			s.Slot, s.Offered, s.Granted, s.InputBlocked, s.OutputDropped, s.Preempted,
			s.BusyChannelSlots, s.FaultLostGrants, s.FaultKilled,
			int64sJSON(s.PerInput), int64sJSON(s.PerChannel)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFaultsJSONL writes the retained fault transitions as JSONL. Slot
// boundaries only.
func (r *FlightRecorder) WriteFaultsJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, t := range r.FaultTransitions() {
		if _, err := fmt.Fprintf(bw,
			`{"slot":%d,"port":%d,"channel":%d,"from":%d,"to":%d}`+"\n",
			t.Slot, t.Port, t.Channel, t.From, t.To); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteNodesJSONL writes the retained cluster node samples as JSONL. Slot
// boundaries only.
func (r *FlightRecorder) WriteNodesJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, s := range r.NodeSamples() {
		healthy := 0
		if s.Healthy {
			healthy = 1
		}
		if _, err := fmt.Fprintf(bw,
			`{"slot":%d,"node":%d,"healthy":%d,"remote_items":%d,"fallback_items":%d,"retries":%d,"reconnects":%d,"bytes_sent":%d,"bytes_received":%d,"rpc_p99_ns":%d,"addr":%q}`+"\n",
			s.Slot, s.Node, healthy, s.RemoteItems, s.FallbackItems, s.Retries,
			s.Reconnects, s.BytesSent, s.BytesReceived, s.RPCP99NS, s.Addr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// int64sJSON renders a slice as a JSON array without reflection.
func int64sJSON(v []int64) string {
	buf := make([]byte, 0, 2+12*len(v))
	buf = append(buf, '[')
	for i, x := range v {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, x, 10)
	}
	return string(append(buf, ']'))
}

// RegisterTelemetry publishes the recorder's own health — ring occupancy,
// overwritten (dropped) records, dump count and dump latency — on a
// registry under wdm_recorder_* names, next to the switch series the
// recorder is taping.
func (r *FlightRecorder) RegisterTelemetry(reg *Registry) {
	ring := func(name string, total func() int64, capacity int) {
		lbl := []Label{{Key: "ring", Value: name}}
		reg.CounterFunc("wdm_recorder_records_total", "Records emitted into a flight-recorder ring.", lbl, total)
		reg.GaugeFunc("wdm_recorder_ring_occupancy", "Fill fraction of a flight-recorder ring (1 = wrapped).", lbl,
			func() float64 { o, _ := ringStats(total(), capacity); return o })
		reg.CounterFunc("wdm_recorder_dropped_total", "Records overwritten by ring wraparound.", lbl,
			func() int64 { _, d := ringStats(total(), capacity); return d })
	}
	ring("snapshots", r.snapTotal.Load, len(r.snaps))
	ring("faults", r.faultTotal.Load, len(r.faults))
	ring("nodes", r.nodeTotal.Load, len(r.nodes))
	reg.CounterFunc("wdm_recorder_records_total", "Records emitted into a flight-recorder ring.",
		[]Label{{Key: "ring", Value: "decisions"}}, r.decisions.Emitted)
	reg.CounterFunc("wdm_recorder_dropped_total", "Records overwritten by ring wraparound.",
		[]Label{{Key: "ring", Value: "decisions"}}, r.decisions.Dropped)
	exl := []Label{{Key: "ring", Value: "exemplars"}}
	reg.CounterFunc("wdm_recorder_records_total", "Records emitted into a flight-recorder ring.", exl, r.exemplars.Offered)
	reg.CounterFunc("wdm_recorder_dropped_total", "Records overwritten by ring wraparound.", exl, r.exemplars.Dropped)
	reg.GaugeFunc("wdm_recorder_ring_occupancy", "Fill fraction of a flight-recorder ring (1 = wrapped).", exl, r.exemplars.Occupancy)
	reg.CounterFunc("wdm_recorder_dumps_total", "Incident bundles dumped.", nil, r.dumps.Load)
	reg.GaugeFunc("wdm_recorder_last_dump_seconds", "Wall time of the most recent bundle dump.", nil,
		func() float64 { return time.Duration(r.lastDumpNS.Load()).Seconds() })
	reg.GaugeFunc("wdm_recorder_dump_seconds_total", "Cumulative bundle-dump wall time.", nil,
		func() float64 { return time.Duration(r.dumpNS.Load()).Seconds() })
}

// RegisterSLO publishes a latency SLO for one pipeline stage as burn-rate
// gauges: the stage's observations should stay under budget for at least
// objective of samples (e.g. 0.999). wdm_slo_error_fraction is the
// fraction over budget, and wdm_slo_burn_rate is that fraction divided by
// the error budget (1−objective) — the standard SRE signal where 1.0 means
// "burning exactly the budget" and anything sustained above it means the
// SLO will be violated.
func RegisterSLO(reg *Registry, stage string, h *metrics.DurationHistogram, budget time.Duration, objective float64) {
	if objective <= 0 || objective >= 1 {
		panic("telemetry: SLO objective must be in (0, 1)")
	}
	lbl := []Label{{Key: "stage", Value: stage}}
	reg.GaugeFunc("wdm_slo_budget_seconds", "Latency budget of the stage SLO.", lbl, budget.Seconds)
	reg.GaugeFunc("wdm_slo_error_fraction", "Fraction of stage observations over the latency budget.", lbl,
		func() float64 { return h.FractionAbove(budget) })
	errBudget := 1 - objective
	reg.GaugeFunc("wdm_slo_burn_rate", "Stage error fraction divided by the SLO error budget (sustained >1 = SLO violation).", lbl,
		func() float64 { return h.FractionAbove(budget) / errBudget })
}
