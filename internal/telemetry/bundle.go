package telemetry

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"time"
)

// BundleVersion is the incident-bundle format version. Readers reject
// bundles with a different major layout; bump it whenever the manifest
// schema or the mandatory file set changes incompatibly.
const BundleVersion = 1

// BundleManifestName is the manifest's entry name; it is always the first
// entry in the tarball so a reader can validate before extracting.
const BundleManifestName = "manifest.json"

// BundleEntry describes one file in an incident bundle: its name, exact
// uncompressed size, and IEEE CRC-32 — enough for the reader to detect
// truncation and corruption per file, on top of gzip's whole-stream
// checksum.
type BundleEntry struct {
	Name  string `json:"name"`
	Size  int64  `json:"size"`
	CRC32 uint32 `json:"crc32"`
}

// BundleManifest is the versioned index at the head of every incident
// bundle.
type BundleManifest struct {
	Version int           `json:"version"`
	Tool    string        `json:"tool"`    // producing command, e.g. "wdmsoak"
	Trigger string        `json:"trigger"` // violation | panic | sigquit | request
	Slot    int64         `json:"slot"`    // slot the trigger fired at
	UnixNS  int64         `json:"unix_ns"` // wall-clock dump time
	Files   []BundleEntry `json:"files"`
}

// BundleWriter accumulates the files of an incident bundle in memory
// (every source is a bounded ring, so bundles are bounded too) and writes
// them out as one gzip tarball with the manifest as the first entry.
type BundleWriter struct {
	manifest BundleManifest
	files    []namedBuf
}

type namedBuf struct {
	name string
	data []byte
}

// NewBundleWriter starts a bundle for the given producing tool, trigger
// kind, and trigger slot.
func NewBundleWriter(tool, trigger string, slot int64) *BundleWriter {
	return &BundleWriter{manifest: BundleManifest{
		Version: BundleVersion,
		Tool:    tool,
		Trigger: trigger,
		Slot:    slot,
		UnixNS:  time.Now().UnixNano(),
	}}
}

// Add stores one file's contents under name. Duplicate names are an
// error surfaced at WriteTo time.
func (w *BundleWriter) Add(name string, data []byte) {
	w.files = append(w.files, namedBuf{name: name, data: append([]byte(nil), data...)})
}

// AddJSON marshals v with indentation and stores it under name.
func (w *BundleWriter) AddJSON(name string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("bundle: marshal %s: %w", name, err)
	}
	w.Add(name, append(data, '\n'))
	return nil
}

// AddFunc runs fill against a buffer and stores the result under name —
// the natural adapter for the recorder's Write*JSONL methods.
func (w *BundleWriter) AddFunc(name string, fill func(io.Writer) error) error {
	var buf bytes.Buffer
	if err := fill(&buf); err != nil {
		return fmt.Errorf("bundle: fill %s: %w", name, err)
	}
	w.Add(name, buf.Bytes())
	return nil
}

// WriteTo writes the finished bundle as a gzip tarball.
func (w *BundleWriter) WriteTo(out io.Writer) (int64, error) {
	seen := make(map[string]bool, len(w.files)+1)
	seen[BundleManifestName] = true
	w.manifest.Files = w.manifest.Files[:0]
	for _, f := range w.files {
		if seen[f.name] {
			return 0, fmt.Errorf("bundle: duplicate or reserved entry name %q", f.name)
		}
		seen[f.name] = true
		w.manifest.Files = append(w.manifest.Files, BundleEntry{
			Name:  f.name,
			Size:  int64(len(f.data)),
			CRC32: crc32.ChecksumIEEE(f.data),
		})
	}
	sort.Slice(w.manifest.Files, func(i, j int) bool {
		return w.manifest.Files[i].Name < w.manifest.Files[j].Name
	})
	manifest, err := json.MarshalIndent(&w.manifest, "", "  ")
	if err != nil {
		return 0, fmt.Errorf("bundle: marshal manifest: %w", err)
	}
	manifest = append(manifest, '\n')

	cw := &countingWriter{w: out}
	gz := gzip.NewWriter(cw)
	tw := tar.NewWriter(gz)
	write := func(name string, data []byte) error {
		hdr := &tar.Header{
			Name:    name,
			Mode:    0o644,
			Size:    int64(len(data)),
			ModTime: time.Unix(0, w.manifest.UnixNS),
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return fmt.Errorf("bundle: write header %s: %w", name, err)
		}
		if _, err := tw.Write(data); err != nil {
			return fmt.Errorf("bundle: write %s: %w", name, err)
		}
		return nil
	}
	if err := write(BundleManifestName, manifest); err != nil {
		return cw.n, err
	}
	for _, f := range w.files {
		if err := write(f.name, f.data); err != nil {
			return cw.n, err
		}
	}
	if err := tw.Close(); err != nil {
		return cw.n, fmt.Errorf("bundle: close tar: %w", err)
	}
	if err := gz.Close(); err != nil {
		return cw.n, fmt.Errorf("bundle: close gzip: %w", err)
	}
	return cw.n, nil
}

// WriteFile writes the bundle to path via a temp file + rename so a crash
// mid-dump never leaves a half-written bundle at the final name.
func (w *BundleWriter) WriteFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("bundle: %w", err)
	}
	if _, err := w.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("bundle: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("bundle: %w", err)
	}
	return nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Bundle is a fully validated, decoded incident bundle.
type Bundle struct {
	Manifest BundleManifest
	files    map[string][]byte
}

// File returns the contents of a bundled file, or an error naming it if
// absent (the manifest guarantees presence for listed files, so this only
// fails for names the producer never added).
func (b *Bundle) File(name string) ([]byte, error) {
	data, ok := b.files[name]
	if !ok {
		return nil, fmt.Errorf("bundle: no entry %q", name)
	}
	return data, nil
}

// Has reports whether the bundle contains name.
func (b *Bundle) Has(name string) bool { _, ok := b.files[name]; return ok }

// Names returns the bundled file names in sorted order, manifest excluded.
func (b *Bundle) Names() []string {
	names := make([]string, 0, len(b.files))
	for n := range b.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ReadBundle decodes and strictly validates an incident bundle: the
// manifest must be the first entry and carry a supported version, every
// listed file must be present with its exact size and CRC-32, and no
// unlisted entries may appear. Truncated or corrupt archives fail with a
// descriptive error rather than yielding partial data.
func ReadBundle(r io.Reader) (*Bundle, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("bundle: not a gzip stream: %w", err)
	}
	defer gz.Close()
	tr := tar.NewReader(gz)

	hdr, err := tr.Next()
	if err != nil {
		return nil, fmt.Errorf("bundle: read first entry: %w", err)
	}
	if hdr.Name != BundleManifestName {
		return nil, fmt.Errorf("bundle: first entry is %q, want %q", hdr.Name, BundleManifestName)
	}
	manifestData, err := io.ReadAll(tr)
	if err != nil {
		return nil, fmt.Errorf("bundle: read manifest: %w", err)
	}
	b := &Bundle{files: make(map[string][]byte)}
	if err := json.Unmarshal(manifestData, &b.Manifest); err != nil {
		return nil, fmt.Errorf("bundle: decode manifest: %w", err)
	}
	if b.Manifest.Version != BundleVersion {
		return nil, fmt.Errorf("bundle: version %d, this reader supports %d", b.Manifest.Version, BundleVersion)
	}
	want := make(map[string]BundleEntry, len(b.Manifest.Files))
	for _, e := range b.Manifest.Files {
		if e.Name == BundleManifestName {
			return nil, fmt.Errorf("bundle: manifest lists itself")
		}
		if _, dup := want[e.Name]; dup {
			return nil, fmt.Errorf("bundle: manifest lists %q twice", e.Name)
		}
		want[e.Name] = e
	}

	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("bundle: truncated or corrupt archive: %w", err)
		}
		entry, listed := want[hdr.Name]
		if !listed {
			return nil, fmt.Errorf("bundle: entry %q not in manifest", hdr.Name)
		}
		if _, dup := b.files[hdr.Name]; dup {
			return nil, fmt.Errorf("bundle: entry %q appears twice", hdr.Name)
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			return nil, fmt.Errorf("bundle: truncated entry %q: %w", hdr.Name, err)
		}
		if int64(len(data)) != entry.Size {
			return nil, fmt.Errorf("bundle: entry %q is %d bytes, manifest says %d", hdr.Name, len(data), entry.Size)
		}
		if got := crc32.ChecksumIEEE(data); got != entry.CRC32 {
			return nil, fmt.Errorf("bundle: entry %q CRC mismatch: got %08x want %08x", hdr.Name, got, entry.CRC32)
		}
		b.files[hdr.Name] = data
	}
	for name := range want {
		if _, ok := b.files[name]; !ok {
			return nil, fmt.Errorf("bundle: manifest lists %q but archive lacks it", name)
		}
	}
	// Drain the remaining gzip stream (tar padding) so the gzip trailer
	// checksum is actually verified — tar's EOF marker sits before it.
	if _, err := io.Copy(io.Discard, gz); err != nil {
		return nil, fmt.Errorf("bundle: corrupt archive tail: %w", err)
	}
	return b, nil
}

// ReadBundleFile opens and decodes a bundle from disk.
func ReadBundleFile(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("bundle: %w", err)
	}
	defer f.Close()
	return ReadBundle(f)
}
