package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func offer(r *ExemplarRing, id uint64, slot, total int64) {
	r.Offer(Exemplar{
		ID: id, Tenant: "t", Slot: slot, Verdict: "granted",
		StartNS: 100, TotalNS: total,
		Stages: StageDurations{total / 2, 0, total / 2, 0, 0, 0},
	})
}

// TestExemplarRingSlowestRetained pins the eviction order: with more
// offers than K, exactly the K slowest survive, reported slowest first.
func TestExemplarRingSlowestRetained(t *testing.T) {
	r := NewExemplarRing(4, 1024)
	for i := 1; i <= 10; i++ {
		offer(r, uint64(i), 0, int64(i)*100) // totals 100..1000
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d exemplars, want 4", len(got))
	}
	for i, want := range []int64{1000, 900, 800, 700} {
		if got[i].TotalNS != want {
			t.Errorf("snapshot[%d].TotalNS = %d, want %d", i, got[i].TotalNS, want)
		}
	}
	if r.Offered() != 10 {
		t.Errorf("Offered = %d, want 10", r.Offered())
	}
	// IDs 1..4 were each inserted (the ring was filling), then displaced;
	// only offers strictly slower than the current floor enter after that.
	if d := r.Dropped(); d != 0 {
		t.Errorf("Dropped = %d, want 0 (ascending totals all enter)", d)
	}
	// A fast offer against a full ring is dropped without entering.
	offer(r, 99, 0, 50)
	if d := r.Dropped(); d != 1 {
		t.Errorf("Dropped = %d after sub-floor offer, want 1", d)
	}
}

// TestExemplarRingInterleavedInsert checks ordering with out-of-order
// totals: insertion keeps the retained set sorted regardless of offer
// order.
func TestExemplarRingInterleavedInsert(t *testing.T) {
	r := NewExemplarRing(3, 1024)
	for _, total := range []int64{500, 100, 900, 300, 700} {
		offer(r, uint64(total), 0, total)
	}
	got := r.Snapshot()
	want := []int64{900, 700, 500}
	if len(got) != len(want) {
		t.Fatalf("retained %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].TotalNS != want[i] {
			t.Errorf("snapshot[%d].TotalNS = %d, want %d", i, got[i].TotalNS, want[i])
		}
	}
}

// TestExemplarRingWindowRollover pins the window semantics: crossing a
// window boundary freezes the old retained set as the previous window,
// and a snapshot shows current-then-previous.
func TestExemplarRingWindowRollover(t *testing.T) {
	r := NewExemplarRing(2, 100)
	offer(r, 1, 10, 800)
	offer(r, 2, 20, 600)
	offer(r, 3, 30, 900)

	// Slot 150 crosses out of window [0,100): the first window freezes
	// (its two slowest retained) and slot 150 opens window [100,200).
	offer(r, 4, 150, 50)
	got := r.Snapshot()
	if len(got) != 3 {
		t.Fatalf("retained %d exemplars after rollover, want 3 (1 current + 2 previous)", len(got))
	}
	if got[0].ID != 4 || got[0].WindowStart != 100 {
		t.Errorf("current window head = id %d winStart %d, want id 4 winStart 100", got[0].ID, got[0].WindowStart)
	}
	if got[1].TotalNS != 900 || got[2].TotalNS != 800 {
		t.Errorf("previous window = totals %d,%d, want 900,800 (slowest first)", got[1].TotalNS, got[2].TotalNS)
	}
	for _, e := range got[1:] {
		if e.WindowStart != 0 {
			t.Errorf("previous-window exemplar has winStart %d, want 0", e.WindowStart)
		}
	}

	// A second rollover discards the first window entirely.
	offer(r, 5, 310, 70)
	got = r.Snapshot()
	if len(got) != 2 {
		t.Fatalf("retained %d after second rollover, want 2", len(got))
	}
	if got[0].ID != 5 || got[1].ID != 4 {
		t.Errorf("got ids %d,%d, want 5,4", got[0].ID, got[1].ID)
	}
	if got[0].WindowStart != 300 {
		t.Errorf("winStart = %d, want 300", got[0].WindowStart)
	}
}

// TestExemplarRingConcurrent hammers Offer from several goroutines while
// readers snapshot — the race gate for scraping /exemplars off a live
// service.
func TestExemplarRingConcurrent(t *testing.T) {
	r := NewExemplarRing(8, 64)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				snap := r.Snapshot()
				for i := 1; i < len(snap); i++ {
					if snap[i-1].WindowStart == snap[i].WindowStart && snap[i-1].TotalNS < snap[i].TotalNS {
						t.Error("snapshot not sorted slowest-first within a window")
						return
					}
				}
				_ = r.Offered()
				_ = r.Occupancy()
			}
		}
	}()
	var wg sync.WaitGroup
	const writers, perWriter = 4, 2000
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				offer(r, uint64(w*perWriter+i), int64(i/10), int64((i*7919)%10000))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if r.Offered() != writers*perWriter {
		t.Errorf("Offered = %d, want %d", r.Offered(), writers*perWriter)
	}
}

// TestStageDurationsJSONRoundTrip checks the name-keyed object encoding
// both ways, and that WriteJSONL output parses back via
// ReadExemplarsJSONL.
func TestStageDurationsJSONRoundTrip(t *testing.T) {
	s := StageDurations{1, 2, 3, 4, 5, 6}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range GrantStageNames {
		frag := fmt.Sprintf("%q:%d", name, i+1)
		if !strings.Contains(string(raw), frag) {
			t.Errorf("marshal missing %s: %s", frag, raw)
		}
	}
	var back StageDurations
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Errorf("round trip = %v, want %v", back, s)
	}
	if s.Total() != 21 {
		t.Errorf("Total = %d, want 21", s.Total())
	}

	r := NewExemplarRing(4, 128)
	offer(r, 7, 3, 4200)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadExemplarsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 7 || got[0].TotalNS != 4200 {
		t.Fatalf("JSONL round trip = %+v", got)
	}
}

// TestExemplarRingDefaults checks non-positive constructor arguments fall
// back to the documented defaults.
func TestExemplarRingDefaults(t *testing.T) {
	r := NewExemplarRing(0, 0)
	if r.K() != 16 || r.WindowSlots() != 1024 {
		t.Errorf("defaults = K %d window %d, want 16/1024", r.K(), r.WindowSlots())
	}
}
