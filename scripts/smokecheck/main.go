// Command smokecheck is the assertion helper behind scripts/cluster_smoke.sh:
// the structured checks the smoke pipeline used to inline as python3
// snippets, reimplemented in Go so the smoke job has no interpreter
// dependency beyond the toolchain that builds the repo anyway.
//
// Subcommands:
//
//	smokecheck frames <cstats.json>
//	    Print the controller's frames_sent count (the number of frames the
//	    node counters are expected to absorb).
//
//	smokecheck ledger <cstats.json> <node-frames-in> <node-frames-out>
//	    Verify the cross-process wire ledger: every frame the controller
//	    sent arrived at a node and vice versa, and all six pipeline stages
//	    carry attribution samples.
//
//	smokecheck trace <merged.trace.json>
//	    Verify the merged Chrome timeline: a controller process row plus
//	    one per node, node spans present, and RPC flow arrows in both
//	    directions.
//
//	smokecheck grant <server.json> <load_report.json>
//	    Reconcile the wdmserve final ledger (stdout JSON) against the
//	    wdmload structured report: the terminal partition must hold and
//	    the two sides must count the same verdicts.
//
//	smokecheck stages <wdmtop.json>
//	    Verify a `wdmtop -once -json` capture: every target up, all six
//	    grant stage histograms present, and each stage count equal to the
//	    settled verdict count — every round-settled request observed into
//	    every stage exactly once.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"

	"wdmsched/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "smokecheck: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: smokecheck frames|ledger|trace ...")
	}
	switch cmd := args[0]; cmd {
	case "frames":
		if len(args) != 2 {
			return fmt.Errorf("usage: smokecheck frames <cstats.json>")
		}
		cs, err := readClusterStats(args[1])
		if err != nil {
			return err
		}
		fmt.Println(cs.FramesSent)
		return nil
	case "ledger":
		if len(args) != 4 {
			return fmt.Errorf("usage: smokecheck ledger <cstats.json> <node-frames-in> <node-frames-out>")
		}
		nodeIn, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			return fmt.Errorf("node-frames-in: %w", err)
		}
		nodeOut, err := strconv.ParseInt(args[3], 10, 64)
		if err != nil {
			return fmt.Errorf("node-frames-out: %w", err)
		}
		return checkLedger(args[1], nodeIn, nodeOut)
	case "trace":
		if len(args) != 2 {
			return fmt.Errorf("usage: smokecheck trace <merged.trace.json>")
		}
		return checkTrace(args[1])
	case "grant":
		if len(args) != 3 {
			return fmt.Errorf("usage: smokecheck grant <server.json> <load_report.json>")
		}
		return checkGrant(args[1], args[2])
	case "stages":
		if len(args) != 2 {
			return fmt.Errorf("usage: smokecheck stages <wdmtop.json>")
		}
		return checkStages(args[1])
	default:
		return fmt.Errorf("unknown subcommand %q (want frames, ledger, trace, grant or stages)", cmd)
	}
}

// clusterStats mirrors the wdmsim -clusterstats document.
type clusterStats struct {
	FramesSent     int64 `json:"frames_sent"`
	FramesReceived int64 `json:"frames_received"`
	Stages         map[string]struct {
		Count int64 `json:"count"`
	} `json:"stages"`
}

func readClusterStats(path string) (*clusterStats, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cs clusterStats
	if err := json.Unmarshal(raw, &cs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &cs, nil
}

func checkLedger(path string, nodeIn, nodeOut int64) error {
	cs, err := readClusterStats(path)
	if err != nil {
		return err
	}
	if cs.FramesSent == 0 {
		return fmt.Errorf("controller sent no frames")
	}
	if cs.FramesSent != nodeIn {
		return fmt.Errorf("controller sent %d frames, nodes received %d", cs.FramesSent, nodeIn)
	}
	if cs.FramesReceived != nodeOut {
		return fmt.Errorf("controller received %d frames, nodes sent %d", cs.FramesReceived, nodeOut)
	}
	for _, stage := range []string{"prepare", "encode", "node-decode", "node-schedule", "node-encode", "commit"} {
		if cs.Stages[stage].Count == 0 {
			return fmt.Errorf("stage attribution incomplete: %q has no samples", stage)
		}
	}
	fmt.Printf("cluster smoke: wire ledger reconciles (%d frames out, %d in) and all six stages attributed\n",
		cs.FramesSent, cs.FramesReceived)
	return nil
}

func checkTrace(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Args struct {
				Name string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	procs := map[int]string{}
	var nodeSpans, flows int
	for _, e := range trace.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "process_name" {
				procs[e.Pid] = e.Args.Name
			}
		case "X":
			if e.Pid > 0 {
				nodeSpans++
			}
		case "s", "f":
			flows++
		}
	}
	if procs[0] != "controller" || len(procs) != 3 {
		return fmt.Errorf("process rows %v, want controller plus two nodes", procs)
	}
	if nodeSpans == 0 || flows == 0 {
		return fmt.Errorf("merged trace lacks node spans (%d) or RPC flow arrows (%d)", nodeSpans, flows)
	}
	fmt.Printf("cluster smoke: merged timeline has %d processes, %d node spans, %d flow events\n",
		len(procs), nodeSpans, flows)
	return nil
}

// checkStages verifies a `wdmtop -once -json` capture against the
// stage-clock contract: every scraped target answered, all six grant
// stages are present, each stage histogram count equals the settled
// verdict count (granted + rejected-contention) — the double-entry
// property that every round-settled request is observed into every
// stage exactly once — and the exemplar drill-down is non-empty.
func checkStages(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		Targets []struct {
			Target   string           `json:"target"`
			Up       bool             `json:"up"`
			Error    string           `json:"error"`
			Verdicts map[string]int64 `json:"verdicts_total"`
			Stages   map[string]struct {
				Count int64 `json:"count"`
			} `json:"stages"`
			Exemplars []json.RawMessage `json:"exemplars"`
		} `json:"targets"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Targets) == 0 {
		return fmt.Errorf("%s: no targets in wdmtop capture", path)
	}
	for _, tg := range doc.Targets {
		if !tg.Up {
			return fmt.Errorf("target %s down: %s", tg.Target, tg.Error)
		}
		settled := tg.Verdicts["granted"] + tg.Verdicts["rejected-contention"]
		if settled == 0 {
			return fmt.Errorf("target %s settled no requests: %v", tg.Target, tg.Verdicts)
		}
		if len(tg.Stages) != len(telemetry.GrantStageNames) {
			return fmt.Errorf("target %s exposes %d stages, want %d", tg.Target, len(tg.Stages), len(telemetry.GrantStageNames))
		}
		for _, stage := range telemetry.GrantStageNames {
			sv, ok := tg.Stages[stage]
			if !ok {
				return fmt.Errorf("target %s missing stage %q", tg.Target, stage)
			}
			if sv.Count != settled {
				return fmt.Errorf("target %s stage %q count %d != settled verdicts %d (granted %d + rejected-contention %d)",
					tg.Target, stage, sv.Count, settled, tg.Verdicts["granted"], tg.Verdicts["rejected-contention"])
			}
		}
		if len(tg.Exemplars) == 0 {
			return fmt.Errorf("target %s has no exemplars in the drill-down", tg.Target)
		}
		fmt.Printf("serve smoke: %s stage histograms reconcile (%d settled requests in all %d stages, %d exemplars)\n",
			tg.Target, settled, len(telemetry.GrantStageNames), len(tg.Exemplars))
	}
	return nil
}

// checkGrant reconciles the wdmserve exit ledger with the wdmload report:
// both sides counted every request, none were lost, and the terminal
// partition (submitted = granted + rejected + retried) holds.
func checkGrant(serverPath, reportPath string) error {
	raw, err := os.ReadFile(serverPath)
	if err != nil {
		return err
	}
	var srv struct {
		Engine string `json:"engine"`
		Slots  int64  `json:"slots"`
		Ledger struct {
			Submitted uint64 `json:"submitted"`
			Admitted  uint64 `json:"admitted"`
			Granted   uint64 `json:"granted"`
			Rejected  uint64 `json:"rejected"`
			Retried   uint64 `json:"retried"`
		} `json:"ledger"`
	}
	if err := json.Unmarshal(raw, &srv); err != nil {
		return fmt.Errorf("%s: %w", serverPath, err)
	}
	l := srv.Ledger
	if l.Submitted == 0 || l.Granted == 0 {
		return fmt.Errorf("server ledger empty: %+v", l)
	}
	if srv.Slots == 0 {
		return fmt.Errorf("server ran no scheduling rounds")
	}
	if l.Submitted != l.Granted+l.Rejected+l.Retried {
		return fmt.Errorf("server ledger does not balance: %+v", l)
	}

	raw, err = os.ReadFile(reportPath)
	if err != nil {
		return err
	}
	var doc struct {
		Results []struct {
			ID     string `json:"id"`
			Tables []struct {
				Rows [][]string `json:"Rows"`
			} `json:"tables"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("%s: %w", reportPath, err)
	}
	cells := map[string]string{}
	for _, g := range doc.Results {
		if g.ID != "grant-load" {
			continue
		}
		for _, t := range g.Tables {
			for _, row := range t.Rows {
				if len(row) == 2 {
					cells[row[0]] = row[1]
				}
			}
		}
	}
	if len(cells) == 0 {
		return fmt.Errorf("%s: no grant-load table rows", reportPath)
	}
	for cell, want := range map[string]uint64{
		"submitted": l.Submitted,
		"granted":   l.Granted,
		"rejected":  l.Rejected,
		"retried":   l.Retried,
	} {
		got, err := strconv.ParseUint(cells[cell], 10, 64)
		if err != nil {
			return fmt.Errorf("report cell %q = %q: %w", cell, cells[cell], err)
		}
		if got != want {
			return fmt.Errorf("report %s = %d, server ledger says %d", cell, got, want)
		}
	}
	if cells["grant latency p99"] == "" || cells["grant latency p99"] == "0s" {
		return fmt.Errorf("report lacks a grant latency p99 cell (got %q)", cells["grant latency p99"])
	}
	fmt.Printf("serve smoke: %s engine ran %d slots; ledger reconciles (%d submitted = %d granted + %d rejected + %d retried), p99 %s\n",
		srv.Engine, srv.Slots, l.Submitted, l.Granted, l.Rejected, l.Retried, cells["grant latency p99"])
	return nil
}
