// Command smokecheck is the assertion helper behind scripts/cluster_smoke.sh:
// the structured checks the smoke pipeline used to inline as python3
// snippets, reimplemented in Go so the smoke job has no interpreter
// dependency beyond the toolchain that builds the repo anyway.
//
// Subcommands:
//
//	smokecheck frames <cstats.json>
//	    Print the controller's frames_sent count (the number of frames the
//	    node counters are expected to absorb).
//
//	smokecheck ledger <cstats.json> <node-frames-in> <node-frames-out>
//	    Verify the cross-process wire ledger: every frame the controller
//	    sent arrived at a node and vice versa, and all six pipeline stages
//	    carry attribution samples.
//
//	smokecheck trace <merged.trace.json>
//	    Verify the merged Chrome timeline: a controller process row plus
//	    one per node, node spans present, and RPC flow arrows in both
//	    directions.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "smokecheck: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: smokecheck frames|ledger|trace ...")
	}
	switch cmd := args[0]; cmd {
	case "frames":
		if len(args) != 2 {
			return fmt.Errorf("usage: smokecheck frames <cstats.json>")
		}
		cs, err := readClusterStats(args[1])
		if err != nil {
			return err
		}
		fmt.Println(cs.FramesSent)
		return nil
	case "ledger":
		if len(args) != 4 {
			return fmt.Errorf("usage: smokecheck ledger <cstats.json> <node-frames-in> <node-frames-out>")
		}
		nodeIn, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			return fmt.Errorf("node-frames-in: %w", err)
		}
		nodeOut, err := strconv.ParseInt(args[3], 10, 64)
		if err != nil {
			return fmt.Errorf("node-frames-out: %w", err)
		}
		return checkLedger(args[1], nodeIn, nodeOut)
	case "trace":
		if len(args) != 2 {
			return fmt.Errorf("usage: smokecheck trace <merged.trace.json>")
		}
		return checkTrace(args[1])
	default:
		return fmt.Errorf("unknown subcommand %q (want frames, ledger or trace)", cmd)
	}
}

// clusterStats mirrors the wdmsim -clusterstats document.
type clusterStats struct {
	FramesSent     int64 `json:"frames_sent"`
	FramesReceived int64 `json:"frames_received"`
	Stages         map[string]struct {
		Count int64 `json:"count"`
	} `json:"stages"`
}

func readClusterStats(path string) (*clusterStats, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cs clusterStats
	if err := json.Unmarshal(raw, &cs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &cs, nil
}

func checkLedger(path string, nodeIn, nodeOut int64) error {
	cs, err := readClusterStats(path)
	if err != nil {
		return err
	}
	if cs.FramesSent == 0 {
		return fmt.Errorf("controller sent no frames")
	}
	if cs.FramesSent != nodeIn {
		return fmt.Errorf("controller sent %d frames, nodes received %d", cs.FramesSent, nodeIn)
	}
	if cs.FramesReceived != nodeOut {
		return fmt.Errorf("controller received %d frames, nodes sent %d", cs.FramesReceived, nodeOut)
	}
	for _, stage := range []string{"prepare", "encode", "node-decode", "node-schedule", "node-encode", "commit"} {
		if cs.Stages[stage].Count == 0 {
			return fmt.Errorf("stage attribution incomplete: %q has no samples", stage)
		}
	}
	fmt.Printf("cluster smoke: wire ledger reconciles (%d frames out, %d in) and all six stages attributed\n",
		cs.FramesSent, cs.FramesReceived)
	return nil
}

func checkTrace(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Args struct {
				Name string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	procs := map[int]string{}
	var nodeSpans, flows int
	for _, e := range trace.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "process_name" {
				procs[e.Pid] = e.Args.Name
			}
		case "X":
			if e.Pid > 0 {
				nodeSpans++
			}
		case "s", "f":
			flows++
		}
	}
	if procs[0] != "controller" || len(procs) != 3 {
		return fmt.Errorf("process rows %v, want controller plus two nodes", procs)
	}
	if nodeSpans == 0 || flows == 0 {
		return fmt.Errorf("merged trace lacks node spans (%d) or RPC flow arrows (%d)", nodeSpans, flows)
	}
	fmt.Printf("cluster smoke: merged timeline has %d processes, %d node spans, %d flow events\n",
		len(procs), nodeSpans, flows)
	return nil
}
