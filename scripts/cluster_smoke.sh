#!/usr/bin/env bash
# Cluster integration smoke (CI: cluster-smoke job; local: make cluster-smoke).
#
# Launches a controller plus two real wdmnode processes — one TCP, one unix
# socket — and asserts the keystone property end to end: the clustered
# run's statistics are byte-identical to the sequential and in-process
# distributed engines, with and without injected transport faults. The
# clean clustered run goes first with tracing on, so the three span dumps
# (controller -spandump plus each node's /spans endpoint) merge into one
# cross-process Chrome timeline that wdmtrace -check verifies, and the
# node-side wdm_node_* frame counters reconcile exactly with the
# controller's wdm_cluster_* ledger. Finally a long run is scraped live on
# both the controller and node /metrics endpoints.
set -euo pipefail
cd "$(dirname "$0")/.."

dir=$(mktemp -d)
cleanup() {
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$dir"
}
trap cleanup EXIT

go build -o "$dir/wdmsim" ./cmd/wdmsim
go build -o "$dir/wdmnode" ./cmd/wdmnode
go build -o "$dir/wdmtrace" ./cmd/wdmtrace
go build -o "$dir/smokecheck" ./scripts/smokecheck

"$dir/wdmnode" -listen 127.0.0.1:19301 -http 127.0.0.1:19391 &
node_pids="$!"
"$dir/wdmnode" -listen "unix:$dir/node2.sock" -http 127.0.0.1:19392 &
node_pids="$node_pids $!"
nodes="127.0.0.1:19301,unix:$dir/node2.sock"
node_http="127.0.0.1:19391 127.0.0.1:19392"

# Background nodes fail silently under `set -e`; a crashed node would
# otherwise surface only as an opaque controller dial error (or worse, a
# hang in a curl retry loop). Check liveness explicitly and propagate the
# dead node's exit status.
check_nodes() {
  for pid in $node_pids; do
    if ! kill -0 "$pid" 2>/dev/null; then
      wait "$pid" && status=0 || status=$?
      echo "cluster smoke: wdmnode (pid $pid) exited early with status $status" >&2
      exit "$status"
    fi
  done
}

# Wait for both node telemetry endpoints.
for addr in $node_http; do
  for _ in $(seq 1 50); do
    curl -sf "http://$addr/metrics" > /dev/null 2>&1 && break
    check_nodes
    sleep 0.1
  done
done
check_nodes

node_counter() { # addr series -> value (0 when the series is absent)
  curl -sf "http://$1/metrics" | awk -v s="$2" '$1 == s {print $2; f=1} END {if (!f) print 0}'
}

args="-n 8 -k 16 -d 3 -load 0.9 -hold 2 -slots 2000 -seed 42 -json"

# The clean clustered run goes first (fresh node span rings), traced and
# with the cluster wire ledger dumped to its own file so the -json output
# stays byte-comparable against the other engines.
before_in=0; before_out=0
for addr in $node_http; do
  before_in=$((before_in + $(node_counter "$addr" wdm_node_frames_received_total)))
  before_out=$((before_out + $(node_counter "$addr" wdm_node_frames_sent_total)))
done
"$dir/wdmsim" $args -cluster "$nodes" \
  -spandump "$dir/ctrl.spans" -clusterstats "$dir/cstats.json" > "$dir/cluster.json"
expected_in=$("$dir/smokecheck" frames "$dir/cstats.json")
# The controller exits as soon as it has written its last frame; give the
# nodes a moment to drain their sockets before reading the counters.
after_in=0; after_out=0
for _ in $(seq 1 50); do
  after_in=0; after_out=0
  for addr in $node_http; do
    after_in=$((after_in + $(node_counter "$addr" wdm_node_frames_received_total)))
    after_out=$((after_out + $(node_counter "$addr" wdm_node_frames_sent_total)))
  done
  [ $((after_in - before_in)) -ge "$expected_in" ] && break
  sleep 0.1
done

# Cross-process wire ledger: on a clean run every frame the controller
# sent arrived at a node and vice versa.
"$dir/smokecheck" ledger "$dir/cstats.json" $((after_in - before_in)) $((after_out - before_out))

# Node observability: the wdm_node_* surface must be live and consistent.
for addr in $node_http; do
  curl -sf "http://$addr/metrics" > "$dir/node_metrics.txt"
  grep -q '^wdm_node_schedule_frames_total [0-9]' "$dir/node_metrics.txt"
  grep -q '^wdm_node_scheduled_items_total [0-9]' "$dir/node_metrics.txt"
  grep -q '^# TYPE wdm_node_schedule_seconds histogram' "$dir/node_metrics.txt"
  grep -q '^wdm_node_port_busy_seconds{port="' "$dir/node_metrics.txt"
done
echo "cluster smoke: node /metrics expose the wdm_node_* series"

# Merge the controller dump with each node's /spans dump into one Chrome
# timeline; -check asserts node spans sit inside their clock-corrected RPC
# windows and the stage attribution sums to slot latency.
curl -sf http://127.0.0.1:19391/spans > "$dir/node1.spans"
curl -sf http://127.0.0.1:19392/spans > "$dir/node2.spans"
"$dir/wdmtrace" -merge -mout "$dir/merged.trace.json" -check \
  "$dir/ctrl.spans" "$dir/node1.spans" "$dir/node2.spans"
"$dir/smokecheck" trace "$dir/merged.trace.json"

"$dir/wdmsim" $args > "$dir/seq.json"
"$dir/wdmsim" $args -distributed > "$dir/dist.json"
"$dir/wdmsim" $args -cluster "$nodes" \
  -netdrop 0.02 -netdup 0.02 -netdelay 0.01 -rpctimeout 50ms > "$dir/faulted.json"

cmp "$dir/seq.json" "$dir/dist.json"
cmp "$dir/seq.json" "$dir/cluster.json"
cmp "$dir/seq.json" "$dir/faulted.json"
check_nodes
echo "cluster smoke: sequential, distributed, traced-cluster and faulted-cluster statistics identical"

# Live telemetry: a long clustered run must expose the cluster runtime
# counters on the controller's /metrics — and the nodes' own endpoints
# must advance while it runs.
"$dir/wdmsim" -quiet -n 8 -k 16 -load 0.9 -slots 2000000 -seed 7 \
  -cluster "$nodes" -listen 127.0.0.1:19380 &
sim=$!
ok=0
for _ in $(seq 1 50); do
  if curl -sf http://127.0.0.1:19380/metrics > "$dir/metrics.txt" 2>/dev/null \
     && grep -q '^wdm_cluster_remote_items_total [0-9]' "$dir/metrics.txt"; then
    ok=1
    break
  fi
  sleep 0.2
done
mid1=$(node_counter 127.0.0.1:19391 wdm_node_schedule_frames_total)
sleep 0.5
mid2=$(node_counter 127.0.0.1:19391 wdm_node_schedule_frames_total)
kill "$sim" 2>/dev/null || true
[ "$ok" = 1 ] || { echo "cluster smoke: wdm_cluster_* never appeared on /metrics" >&2; exit 1; }
grep -q '^wdm_cluster_node_healthy{' "$dir/metrics.txt"
grep -q '^# TYPE wdm_cluster_rpc_latency_seconds histogram' "$dir/metrics.txt"
grep -q '^wdm_cluster_frames_sent_total [0-9]' "$dir/metrics.txt"
grep -q '^wdm_cluster_stage_seconds_count{stage="node-schedule"}' "$dir/metrics.txt"
[ "$mid2" -gt "$mid1" ] || {
  echo "cluster smoke: node schedule-frame counter did not advance mid-run ($mid1 -> $mid2)" >&2
  exit 1
}
check_nodes
echo "cluster smoke: live /metrics expose the cluster and node runtime series"
