#!/usr/bin/env bash
# Cluster integration smoke (CI: cluster-smoke job; local: make cluster-smoke).
#
# Launches a controller plus two real wdmnode processes — one TCP, one unix
# socket — and asserts the keystone property end to end: the clustered
# run's statistics are byte-identical to the sequential and in-process
# distributed engines, with and without injected transport faults. Then
# scrapes a live /metrics endpoint of a clustered run and checks the
# wdm_cluster_* series are exposed.
set -euo pipefail
cd "$(dirname "$0")/.."

dir=$(mktemp -d)
cleanup() {
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$dir"
}
trap cleanup EXIT

go build -o "$dir/wdmsim" ./cmd/wdmsim
go build -o "$dir/wdmnode" ./cmd/wdmnode

"$dir/wdmnode" -listen 127.0.0.1:19301 &
"$dir/wdmnode" -listen "unix:$dir/node2.sock" &
nodes="127.0.0.1:19301,unix:$dir/node2.sock"

args="-n 8 -k 16 -d 3 -load 0.9 -hold 2 -slots 2000 -seed 42 -json"
"$dir/wdmsim" $args > "$dir/seq.json"
"$dir/wdmsim" $args -distributed > "$dir/dist.json"
"$dir/wdmsim" $args -cluster "$nodes" > "$dir/cluster.json"
"$dir/wdmsim" $args -cluster "$nodes" \
  -netdrop 0.02 -netdup 0.02 -netdelay 0.01 -rpctimeout 50ms > "$dir/faulted.json"

cmp "$dir/seq.json" "$dir/dist.json"
cmp "$dir/seq.json" "$dir/cluster.json"
cmp "$dir/seq.json" "$dir/faulted.json"
echo "cluster smoke: sequential, distributed, cluster and faulted-cluster statistics identical"

# Live telemetry: a long clustered run must expose the cluster runtime
# counters on /metrics while it runs.
"$dir/wdmsim" -quiet -n 8 -k 16 -load 0.9 -slots 2000000 -seed 7 \
  -cluster "$nodes" -listen 127.0.0.1:19380 &
sim=$!
ok=0
for _ in $(seq 1 50); do
  if curl -sf http://127.0.0.1:19380/metrics > "$dir/metrics.txt" 2>/dev/null \
     && grep -q '^wdm_cluster_remote_items_total [0-9]' "$dir/metrics.txt"; then
    ok=1
    break
  fi
  sleep 0.2
done
kill "$sim" 2>/dev/null || true
[ "$ok" = 1 ] || { echo "cluster smoke: wdm_cluster_* never appeared on /metrics" >&2; exit 1; }
grep -q '^wdm_cluster_node_healthy{' "$dir/metrics.txt"
grep -q '^# TYPE wdm_cluster_rpc_latency_seconds histogram' "$dir/metrics.txt"
echo "cluster smoke: live /metrics exposes the cluster runtime series"
