#!/usr/bin/env bash
# Grant-service smoke (CI: serve-smoke job; local: make serve-smoke).
#
# Boots wdmserve on loopback, drives it with wdmload's open-loop
# generator for a few thousand scheduling slots, and asserts the serving
# contract end to end: zero lost requests (wdmload fails internally if
# any verdict goes missing), the server's exit ledger reconciled against
# the client report by smokecheck, wdm_grant_* telemetry live on
# /metrics mid-run, the structured report accepted by wdmbench
# -validate, and a clean SIGTERM drain (exit 0 with the final ledger on
# stdout).
set -euo pipefail
cd "$(dirname "$0")/.."

dir=$(mktemp -d)
cleanup() {
  kill $(jobs -p) 2>/dev/null || true
  rm -rf "$dir"
}
trap cleanup EXIT

go build -o "$dir/wdmserve" ./cmd/wdmserve
go build -o "$dir/wdmload" ./cmd/wdmload
go build -o "$dir/wdmbench" ./cmd/wdmbench
go build -o "$dir/wdmtop" ./cmd/wdmtop
go build -o "$dir/smokecheck" ./scripts/smokecheck

grant_addr=127.0.0.1:19411
http_addr=127.0.0.1:19481

"$dir/wdmserve" -n 8 -k 16 -d 3 -seed 7 -resync 256 \
  -grant "$grant_addr" -listen "$http_addr" \
  -bundle "$dir/serve.incident.tgz" -report "$dir/serve.report.json" \
  > "$dir/server.json" 2> "$dir/server.log" &
server=$!

# The background server fails silently under `set -e`; surface an early
# death (its log and exit status) instead of an opaque dial error, and
# propagate the status like cluster_smoke.sh does for its nodes.
check_server() {
  if ! kill -0 "$server" 2>/dev/null; then
    wait "$server" && status=0 || status=$?
    echo "serve smoke: wdmserve exited early with status $status" >&2
    sed 's/^/  server: /' "$dir/server.log" >&2
    [ "$status" -ne 0 ] || status=1
    exit "$status"
  fi
}

# Wait for both listeners: the grant wire (log line) and telemetry.
for _ in $(seq 1 50); do
  grep -q "grant: listening on" "$dir/server.log" 2>/dev/null &&
    curl -sf "http://$http_addr/metrics" > /dev/null 2>&1 && break
  check_server
  sleep 0.1
done
check_server

# Open-loop drive: 20k requests at 40k req/s over 4 connections — a few
# thousand scheduling rounds on the 8x16 switch. wdmload exits non-zero
# on any lost request or client/server ledger mismatch.
"$dir/wdmload" -server "$grant_addr" -conns 4 -rate 40000 -requests 20000 \
  -hold 2 -seed 11 -o "$dir/load_report.json" -quiet
echo "serve smoke: wdmload collected every verdict (zero lost requests)"

# Telemetry: the grant-layer series must be live and populated.
curl -sf "http://$http_addr/metrics" > "$dir/metrics.txt"
grep -q '^wdm_grant_rounds_total [0-9]' "$dir/metrics.txt"
grep -q '^wdm_grant_verdicts_total{verdict="granted"} [1-9]' "$dir/metrics.txt"
grep -q '^# TYPE wdm_grant_latency_seconds histogram' "$dir/metrics.txt"
grep -q '^wdm_grant_rx_frames_total [1-9]' "$dir/metrics.txt"
grep -q '^wdm_grant_queue_depth{tenant="wdmload"}' "$dir/metrics.txt"
echo "serve smoke: /metrics exposes the wdm_grant_* series"

# Health endpoints: liveness and drain-aware readiness both green while
# the service is serving.
curl -sf "http://$http_addr/healthz" | grep -q ok
curl -sf "http://$http_addr/readyz" | grep -q ready
echo "serve smoke: /healthz and /readyz answer while serving"

# Fleet console against the live service: one -once -json scrape must
# parse, and the stage histograms must reconcile with the verdict
# counters — every settled request observed into every stage exactly
# once (the double-entry stage contract).
"$dir/wdmtop" -once -json -targets "$http_addr" > "$dir/top.json"
"$dir/smokecheck" stages "$dir/top.json"

# The structured report must plug into the wdmbench tooling.
"$dir/wdmbench" -validate < "$dir/load_report.json"

# Graceful drain: SIGTERM stops admission, flushes in-flight slots, and
# exits 0 with the final service ledger on stdout.
kill -TERM "$server"
drain=0
wait "$server" || drain=$?
if [ "$drain" -ne 0 ]; then
  echo "serve smoke: drain exit status $drain, want 0" >&2
  sed 's/^/  server: /' "$dir/server.log" >&2
  exit "$drain"
fi
grep -q "draining" "$dir/server.log"
echo "serve smoke: SIGTERM drained cleanly (exit 0)"

# No invariant violation fired: the incident report must not exist.
if [ -e "$dir/serve.report.json" ]; then
  echo "serve smoke: server wrote an incident report on a clean run" >&2
  cat "$dir/serve.report.json" >&2
  exit 1
fi

# Byte-exact reconciliation of the server's exit ledger against the
# client-side report.
"$dir/smokecheck" grant "$dir/server.json" "$dir/load_report.json"
