package wdm_test

import (
	"fmt"

	wdm "wdmsched"
)

// ExampleNewExactScheduler reproduces the paper's Section I contention
// example: six requests, k = 6, circular conversion of degree 3. Limited
// range conversion can grant only five of the six.
func ExampleNewExactScheduler() {
	conv, err := wdm.NewSymmetricConversion(wdm.Circular, 6, 3)
	if err != nil {
		panic(err)
	}
	sched, err := wdm.NewExactScheduler(conv)
	if err != nil {
		panic(err)
	}
	requests := []int{0, 2, 3, 0, 1, 0} // two on λ1, three on λ2, one on λ4
	res := wdm.NewResult(conv.K())
	sched.Schedule(requests, nil, res)
	fmt.Println("granted:", res.Size, "of", 6)
	// Output:
	// granted: 5 of 6
}

// ExampleNewScheduler_occupied shows the Section V extension: channels
// held by earlier multi-slot connections are excluded from the matching.
func ExampleNewScheduler_occupied() {
	conv, err := wdm.NewSymmetricConversion(wdm.Circular, 6, 3)
	if err != nil {
		panic(err)
	}
	sched, err := wdm.NewScheduler("break-first-available", conv)
	if err != nil {
		panic(err)
	}
	requests := []int{1, 1, 1, 1, 1, 1}
	occupied := []bool{true, false, true, false, true, false}
	res := wdm.NewResult(conv.K())
	sched.Schedule(requests, occupied, res)
	fmt.Println("granted:", res.Size, "on", 3, "free channels")
	// Output:
	// granted: 3 on 3 free channels
}

// ExampleErlangB evaluates the exact full-range blocking reference used by
// the asynchronous mode experiments.
func ExampleErlangB() {
	b, err := wdm.ErlangB(2, 1) // two channels, one Erlang
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.2f\n", b)
	// Output:
	// 0.20
}
