// Benchmarks backing the experiment index in DESIGN.md: one benchmark per
// reproduced complexity claim or simulation study. go test -bench=.
// -benchmem regenerates the raw numbers; cmd/wdmbench renders the derived
// tables.
package wdm_test

import (
	"fmt"
	"testing"

	"wdmsched/internal/async"
	"wdmsched/internal/bipartite"
	"wdmsched/internal/core"
	"wdmsched/internal/fabric"
	"wdmsched/internal/interconnect"
	"wdmsched/internal/telemetry"
	"wdmsched/internal/traffic"
	"wdmsched/internal/wavelength"
)

// benchVector builds a deterministic random request vector.
func benchVector(k, maxPer int, seed uint64) []int {
	rng := traffic.NewRNG(seed)
	vec := make([]int, k)
	for i := range vec {
		vec[i] = rng.Intn(maxPer + 1)
	}
	return vec
}

// benchScheduler runs one scheduler over a fixed vector; the hot path of
// every per-slot decision (experiment P7).
func benchScheduler(b *testing.B, s core.Scheduler, k, maxPer int) {
	b.Helper()
	vec := benchVector(k, maxPer, 1)
	res := core.NewResult(k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(vec, nil, res)
	}
}

// BenchmarkFirstAvailable — P5/P7: the O(k) exact scheduler for
// non-circular conversion (paper Table 2).
func BenchmarkFirstAvailable(b *testing.B) {
	for _, k := range []int{8, 16, 32, 64, 128, 256} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			conv := wavelength.MustNew(wavelength.NonCircular, k, 2, 2)
			s, err := core.NewFirstAvailable(conv)
			if err != nil {
				b.Fatal(err)
			}
			benchScheduler(b, s, k, 3)
		})
	}
}

// BenchmarkBreakAndFirstAvailable — P6/P7: the O(dk) exact scheduler for
// circular conversion (paper Table 3).
func BenchmarkBreakAndFirstAvailable(b *testing.B) {
	for _, k := range []int{8, 16, 32, 64, 128, 256} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			conv := wavelength.MustNew(wavelength.Circular, k, 2, 2)
			s, err := core.NewBreakFirstAvailable(conv)
			if err != nil {
				b.Fatal(err)
			}
			benchScheduler(b, s, k, 3)
		})
	}
}

// BenchmarkFastFirstAvailable — the word-parallel FA kernel on the same
// workload as BenchmarkFirstAvailable, plus the large-k points where the
// packed layout pays.
func BenchmarkFastFirstAvailable(b *testing.B) {
	for _, k := range []int{8, 16, 32, 64, 128, 256} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			conv := wavelength.MustNew(wavelength.NonCircular, k, 2, 2)
			s, err := core.NewFastFirstAvailable(conv)
			if err != nil {
				b.Fatal(err)
			}
			benchScheduler(b, s, k, 3)
		})
	}
}

// BenchmarkFastBreakAndFirstAvailable — the word-parallel BFA kernel on
// the same dense-uniform workload as BenchmarkBreakAndFirstAvailable.
// Dense vectors are the kernel's worst case (every wavelength is a
// bucket), so expect rough parity here; the concentrated hot-band
// variants of BenchmarkSwitchRunSlot carry the k=128/256 speedup
// acceptance numbers.
func BenchmarkFastBreakAndFirstAvailable(b *testing.B) {
	for _, k := range []int{8, 16, 32, 64, 128, 256} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			conv := wavelength.MustNew(wavelength.Circular, k, 2, 2)
			s, err := core.NewFastBFA(conv)
			if err != nil {
				b.Fatal(err)
			}
			benchScheduler(b, s, k, 3)
		})
	}
}

// BenchmarkScalingD — P7b: BFA cost grows linearly in the conversion
// degree d at fixed k.
func BenchmarkScalingD(b *testing.B) {
	const k = 64
	for _, d := range []int{3, 5, 9, 17, 33} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			e := (d - 1) / 2
			conv := wavelength.MustNew(wavelength.Circular, k, e, e)
			s, err := core.NewBreakFirstAvailable(conv)
			if err != nil {
				b.Fatal(err)
			}
			benchScheduler(b, s, k, 3)
		})
	}
}

// BenchmarkScalingN — P7c: per-fiber request counts grow with the
// interconnect size N; the distributed scheduler stays flat while the
// Hopcroft–Karp baseline grows (the paper's O(dk) vs O(N^1.5 k^1.5 d)
// comparison).
func BenchmarkScalingN(b *testing.B) {
	const k = 16
	conv := wavelength.MustNew(wavelength.Circular, k, 1, 1)
	for _, n := range []int{4, 8, 16, 32, 64} {
		maxPer := n/4 + 1
		b.Run(fmt.Sprintf("BFA/N=%d", n), func(b *testing.B) {
			s, err := core.NewBreakFirstAvailable(conv)
			if err != nil {
				b.Fatal(err)
			}
			benchScheduler(b, s, k, maxPer)
		})
		b.Run(fmt.Sprintf("HopcroftKarp/N=%d", n), func(b *testing.B) {
			benchScheduler(b, core.NewBaseline(conv), k, maxPer)
		})
	}
}

// BenchmarkParallelBFA — S9: the Section IV-B d-worker variant on its
// persistent worker pool. The d workers start once and are woken per call,
// so the steady-state Schedule is allocation-free; the cross-goroutine
// wake/join still costs more than the sequential loop at software scales —
// the experiment's point is identical results, mirroring the paper's
// "d units of hardware" trade.
func BenchmarkParallelBFA(b *testing.B) {
	for _, k := range []int{16, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			conv := wavelength.MustNew(wavelength.Circular, k, 2, 2)
			s, err := core.NewParallelBreakFirstAvailable(conv)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			benchScheduler(b, s, k, 3)
		})
	}
}

// TestParallelBFABenchmarkZeroAllocs pins the worker-pool fix as a
// -benchmem assertion: the steady-state parallel Schedule must report
// 0 allocs/op (it used to spawn d goroutines per call).
func TestParallelBFABenchmarkZeroAllocs(t *testing.T) {
	const k = 64
	conv := wavelength.MustNew(wavelength.Circular, k, 2, 2)
	s, err := core.NewParallelBreakFirstAvailable(conv)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	vec := benchVector(k, 3, 1)
	res := core.NewResult(k)
	s.Schedule(vec, nil, res) // start the persistent workers
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Schedule(vec, nil, res)
		}
	})
	if a := r.AllocsPerOp(); a != 0 {
		t.Errorf("parallel BFA Schedule: %d allocs/op, want 0 (%s)", a, r.MemString())
	}
}

// BenchmarkPriorityScheduler — S6: strict-priority QoS over two classes.
func BenchmarkPriorityScheduler(b *testing.B) {
	const k = 32
	conv := wavelength.MustNew(wavelength.Circular, k, 1, 1)
	ps, err := core.NewPriorityScheduler(conv)
	if err != nil {
		b.Fatal(err)
	}
	high := benchVector(k, 2, 1)
	low := benchVector(k, 2, 2)
	results := []*core.Result{core.NewResult(k), core.NewResult(k)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ps.ScheduleClasses([][]int{high, low}, nil, results); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAsyncArrival — S10: event-driven asynchronous mode, cost per
// connection arrival (1000 arrivals per iteration).
func BenchmarkAsyncArrival(b *testing.B) {
	conv := wavelength.MustNew(wavelength.Circular, 16, 1, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := async.Run(async.Config{
			Conv: conv, ArrivalRate: 10, MeanHold: 1, Seed: uint64(i),
		}, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHardwareFirstAvailable — the §III register-level datapath, one
// slot (k cycles) per iteration.
func BenchmarkHardwareFirstAvailable(b *testing.B) {
	const n, k = 8, 32
	hw, err := fabric.NewHardwareFirstAvailable(n, k, 1, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	rng := traffic.NewRNG(9)
	var grants []fabric.Grant
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for in := 0; in < n; in++ {
			for w := 0; w < k; w++ {
				if rng.Float64() < 0.3 {
					hw.Register().Mark(in, w)
				}
			}
		}
		grants, err = hw.Schedule(nil, grants[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShortestEdgeBreak — P8/S2: the O(k) single-break approximation
// (paper Section IV-C).
func BenchmarkShortestEdgeBreak(b *testing.B) {
	for _, k := range []int{16, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			conv := wavelength.MustNew(wavelength.Circular, k, 2, 2)
			s, err := core.NewShortestEdge(conv)
			if err != nil {
				b.Fatal(err)
			}
			benchScheduler(b, s, k, 3)
		})
	}
}

// BenchmarkFullRange — the trivial scheduler, the paper's d = k special
// case.
func BenchmarkFullRange(b *testing.B) {
	for _, k := range []int{16, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			conv := wavelength.MustNew(wavelength.Full, k, 0, 0)
			s, err := core.NewFullRange(conv)
			if err != nil {
				b.Fatal(err)
			}
			benchScheduler(b, s, k, 3)
		})
	}
}

// BenchmarkHopcroftKarpBaseline — the general bipartite matching
// comparator on request graphs.
func BenchmarkHopcroftKarpBaseline(b *testing.B) {
	for _, k := range []int{16, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			conv := wavelength.MustNew(wavelength.Circular, k, 2, 2)
			benchScheduler(b, core.NewBaseline(conv), k, 3)
		})
	}
}

// BenchmarkOccupiedChannels — P9: scheduling with Section V occupancy.
func BenchmarkOccupiedChannels(b *testing.B) {
	const k = 32
	conv := wavelength.MustNew(wavelength.Circular, k, 1, 1)
	s, err := core.NewBreakFirstAvailable(conv)
	if err != nil {
		b.Fatal(err)
	}
	vec := benchVector(k, 3, 1)
	occ := make([]bool, k)
	rng := traffic.NewRNG(2)
	for i := range occ {
		occ[i] = rng.Float64() < 0.4
	}
	res := core.NewResult(k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(vec, occ, res)
	}
}

// BenchmarkGloverHeap — the convex-graph matching substrate (paper
// Table 1 and its Lipski–Preparata realization).
func BenchmarkGloverHeap(b *testing.B) {
	const nLeft, nRight = 256, 128
	rng := traffic.NewRNG(3)
	begin := make([]int, nLeft)
	end := make([]int, nLeft)
	for a := range begin {
		begin[a] = rng.Intn(nRight)
		end[a] = begin[a] + rng.Intn(nRight-begin[a])
	}
	c, err := bipartite.NewConvexGraph(nRight, begin, end)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("literal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Glover()
		}
	})
	b.Run("heap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.GloverHeap()
		}
	})
}

// benchSwitch runs whole-interconnect slots — S1/S4.
func benchSwitch(b *testing.B, distributed bool) {
	b.Helper()
	const n, k, slots = 8, 16, 64
	conv := wavelength.MustNew(wavelength.Circular, k, 1, 1)
	tcfg := traffic.Config{N: n, K: k, Seed: 5}
	gen, err := traffic.NewBernoulli(tcfg, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := traffic.Record(gen, tcfg, slots)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw, err := interconnect.New(interconnect.Config{
			N: n, Conv: conv, Seed: 5, Distributed: distributed,
		})
		if err != nil {
			b.Fatal(err)
		}
		rep := tr.Replay()
		var buf []traffic.Packet
		for s := 0; s < slots; s++ {
			buf = rep.Generate(s, buf[:0])
			if err := sw.RunSlot(buf); err != nil {
				b.Fatal(err)
			}
		}
		sw.Finalize() // stop the worker pool before the next iteration's switch
	}
}

// BenchmarkSimulatedSlot — S1: sequential whole-switch slots (64 slots per
// iteration, N=8, k=16, load 1.0). Includes switch construction; for the
// steady-state hot path see BenchmarkSwitchRunSlot.
func BenchmarkSimulatedSlot(b *testing.B) { benchSwitch(b, false) }

// BenchmarkDistributedSlot — S4: worker-pool whole-switch slots (includes
// pool start/stop each iteration).
func BenchmarkDistributedSlot(b *testing.B) { benchSwitch(b, true) }

// runSlotMode is one BenchmarkSwitchRunSlot variant: an engine/telemetry
// selection on the base shape (n=8, k=16, circular(1,1), uniform Bernoulli
// load 1.0), or — when band > 0 — a large-k kernel comparison point: n=4,
// circular(8,8), hot-band traffic (all arrivals on the first band
// wavelengths, all to port 0), scalar vs word-parallel scheduler.
type runSlotMode struct {
	name        string
	distributed bool
	traced      bool
	recorded    bool // attach a FlightRecorder (snapshot cadence inside the 64-slot window)
	n, k, e, f  int
	sched       string // Config.Scheduler; "" = default exact
	band        int    // hot-band width; 0 = uniform Bernoulli
	workload    string // adversarial generator: "heavytail", "selfsimilar"; "" = Bernoulli/hot-band
}

// switchRunSlotModes are the BenchmarkSwitchRunSlot variants: the two
// engines bare, the sequential engine with full observability on
// (telemetry registry + decision tracer — tracing must be free), and the
// large-k scalar-vs-kernel pairs whose ratio is the word-parallel speedup
// recorded in the BENCH trajectory.
var switchRunSlotModes = []runSlotMode{
	{name: "sequential", n: 8, k: 16, e: 1, f: 1},
	{name: "distributed", distributed: true, n: 8, k: 16, e: 1, f: 1},
	{name: "sequential-traced", traced: true, n: 8, k: 16, e: 1, f: 1},
	{name: "sequential-recorded", recorded: true, n: 8, k: 16, e: 1, f: 1},
	{name: "heavytail", n: 8, k: 16, e: 1, f: 1, workload: "heavytail"},
	{name: "selfsimilar", distributed: true, n: 8, k: 16, e: 1, f: 1, workload: "selfsimilar"},
	{name: "k=128-scalar", n: 8, k: 128, e: 20, f: 20, sched: "exact", band: 8},
	{name: "k=128-fast", n: 8, k: 128, e: 20, f: 20, sched: "fast", band: 8},
	{name: "k=256-scalar", n: 8, k: 256, e: 20, f: 20, sched: "exact", band: 8},
	{name: "k=256-fast", n: 8, k: 256, e: 20, f: 20, sched: "fast", band: 8},
}

// newRunSlotSwitch builds the long-lived switch and pregenerated slots
// shared by BenchmarkSwitchRunSlot and its zero-alloc pin.
func newRunSlotSwitch(tb testing.TB, mode runSlotMode) (*interconnect.Switch, [][]traffic.Packet) {
	tb.Helper()
	const slots = 64
	conv := wavelength.MustNew(wavelength.Circular, mode.k, mode.e, mode.f)
	cfg := interconnect.Config{
		N: mode.n, Conv: conv, Seed: 5,
		Scheduler: mode.sched, Distributed: mode.distributed,
	}
	if mode.traced {
		cfg.Telemetry = telemetry.NewRegistry()
		cfg.Trace = telemetry.NewDecisionTracer(mode.n, 1<<10)
	}
	if mode.recorded {
		// Full observability stack with the flight recorder on: the
		// snapshot cadence of 16 fires 4× inside the 64-slot window, so
		// the pin proves cadenced recording itself is allocation-free.
		cfg.Telemetry = telemetry.NewRegistry()
		cfg.Recorder = telemetry.NewFlightRecorder(telemetry.FlightRecorderConfig{
			Ports: mode.n, DecisionCap: 1 << 10, SnapshotEvery: 16,
		})
	}
	sw, err := interconnect.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	tcfg := traffic.Config{N: mode.n, K: mode.k, Seed: 5}
	var gen traffic.Generator
	switch {
	case mode.workload == "heavytail":
		// The adversarial generators drive the same 0 allocs/op pin: bursty
		// Pareto arrivals with skewed destinations must not knock the engine
		// off its steady state.
		gen, err = traffic.NewHeavyTail(tcfg, 0.7, 1.5, 0.8)
	case mode.workload == "selfsimilar":
		gen, err = traffic.NewSelfSimilar(tcfg, 0.9, 1.5, 8*mode.k)
	case mode.band > 0:
		gen, err = traffic.NewHotBand(tcfg, 0.9, 0, mode.band)
	default:
		gen, err = traffic.NewBernoulli(tcfg, 1.0)
	}
	if err != nil {
		tb.Fatal(err)
	}
	pre := make([][]traffic.Packet, slots)
	for s := range pre {
		pre[s] = gen.Generate(s, nil)
	}
	for pass := 0; pass < 4; pass++ { // reach allocation steady state
		for _, pkts := range pre {
			if err := sw.RunSlot(pkts); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return sw, pre
}

// BenchmarkSwitchRunSlot — the engine acceptance benchmark: steady-state
// cost of one slot on a long-lived switch, sequential and distributed.
// Every mode must report 0 allocs/op: the persistent engine reuses the
// result buffers, arrival slices, and (in distributed mode) its port
// workers across slots, and the decision tracer writes into preallocated
// per-port rings.
func BenchmarkSwitchRunSlot(b *testing.B) {
	for _, mode := range switchRunSlotModes {
		b.Run(mode.name, func(b *testing.B) {
			sw, pre := newRunSlotSwitch(b, mode)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sw.RunSlot(pre[i%len(pre)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			sw.Finalize()
		})
	}
}

// TestSwitchRunSlotZeroAllocs pins the 0 allocs/op acceptance criterion
// as a plain test so `go test ./...` enforces it — with observability
// fully enabled included: attaching a telemetry registry and a decision
// tracer must not put an allocation on the slot hot path.
func TestSwitchRunSlotZeroAllocs(t *testing.T) {
	for _, mode := range switchRunSlotModes {
		t.Run(mode.name, func(t *testing.T) {
			sw, pre := newRunSlotSwitch(t, mode)
			defer sw.Finalize()
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := sw.RunSlot(pre[i%len(pre)]); err != nil {
						b.Fatal(err)
					}
				}
			})
			if a := r.AllocsPerOp(); a != 0 {
				t.Errorf("RunSlot (%s): %d allocs/op, want 0 (%s)", mode.name, a, r.MemString())
			}
		})
	}
}

// BenchmarkTrafficBernoulli — workload generation cost.
func BenchmarkTrafficBernoulli(b *testing.B) {
	gen, err := traffic.NewBernoulli(traffic.Config{N: 16, K: 32, Seed: 7}, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	var buf []traffic.Packet
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = gen.Generate(i, buf[:0])
	}
}

// BenchmarkSelector — S5 fairness layer cost.
func BenchmarkSelector(b *testing.B) {
	requesters := []int{0, 2, 3, 5, 8, 9, 11, 13}
	b.Run("round-robin", func(b *testing.B) {
		s := fabric.NewRoundRobin(4)
		var dst []int
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = s.Pick(1, requesters, 3, dst[:0])
		}
	})
	b.Run("random", func(b *testing.B) {
		s := fabric.NewRandom(11)
		var dst []int
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = s.Pick(1, requesters, 3, dst[:0])
		}
	})
}
